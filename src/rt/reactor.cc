#include "src/rt/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

#include "src/io/uring_backend.h"
#include "src/rt/listener.h"

namespace affinity {
namespace rt {

namespace {

// Stack-array cap for one accept4 drain. accept_batch is clamped to this so
// a batch's bookkeeping never leaves the stack.
constexpr int kMaxAcceptBatch = 256;

// Capped exponential accept backoff after EMFILE/ENFILE: first window 1 ms,
// doubling to at most 100 ms -- long enough for fds to free up, short
// enough that the listen backlog keeps a bound on client-visible latency.
constexpr int kBackoffFirstMs = 1;
constexpr int kBackoffCapMs = 100;

uint64_t ToNs(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

const char* RtModeName(RtMode mode) {
  switch (mode) {
    case RtMode::kStock:
      return "stock";
    case RtMode::kFine:
      return "fine";
    case RtMode::kAffinity:
      return "affinity";
  }
  return "?";
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kAcceptThenRst:
      return "accept_then_rst";
    case OverloadPolicy::kLeaveInBacklog:
      return "leave_in_backlog";
  }
  return "?";
}

const char* DeadlineKindName(DeadlineKind kind) {
  switch (kind) {
    case DeadlineKind::kNone:
      return "none";
    case DeadlineKind::kHandshake:
      return "handshake";
    case DeadlineKind::kIdle:
      return "idle";
    case DeadlineKind::kRead:
      return "read";
    case DeadlineKind::kWrite:
      return "write";
    case DeadlineKind::kLifetime:
      return "lifetime";
  }
  return "?";
}

Reactor::Reactor(int index, ReactorShared* shared) : index_(index), shared_(shared) {}

void Reactor::ResolveHotCells() {
  obs::MetricsRegistry* m = shared_->metrics;
  const RtMetricIds& ids = shared_->ids;
  hot_.accepted = m->Cell(ids.accepted, index_);
  hot_.served_local = m->Cell(ids.served_local, index_);
  hot_.served_remote = m->Cell(ids.served_remote, index_);
  hot_.steals = m->Cell(ids.steals, index_);
  hot_.overflow_drops = m->Cell(ids.overflow_drops, index_);
  hot_.epoll_wakeups = m->Cell(ids.epoll_wakeups, index_);
  hot_.conn_remote_frees = m->Cell(ids.conn_remote_frees, index_);
  hot_.pool_exhausted = m->Cell(ids.pool_exhausted, index_);
  hot_.accept_eintr = m->Cell(ids.accept_eintr, index_);
  hot_.accept_econnaborted = m->Cell(ids.accept_econnaborted, index_);
  hot_.accept_eproto = m->Cell(ids.accept_eproto, index_);
  hot_.accept_emfile = m->Cell(ids.accept_emfile, index_);
  hot_.accept_backoff = m->Cell(ids.accept_backoff, index_);
  hot_.admission_shed = m->Cell(ids.admission_shed, index_);
  hot_.requests = m->Cell(ids.requests, index_);
  hot_.requests_local_core = m->Cell(ids.requests_local_core, index_);
  hot_.requests_remote_core = m->Cell(ids.requests_remote_core, index_);
  hot_.requests_dist[0] = m->Cell(ids.requests_same_llc, index_);
  hot_.requests_dist[1] = m->Cell(ids.requests_cross_llc, index_);
  hot_.requests_dist[2] = m->Cell(ids.requests_cross_node, index_);
  hot_.steals_dist[0] = m->Cell(ids.steals_same_llc, index_);
  hot_.steals_dist[1] = m->Cell(ids.steals_cross_llc, index_);
  hot_.steals_dist[2] = m->Cell(ids.steals_cross_node, index_);
  hot_.conn_migrations = m->Cell(ids.conn_migrations, index_);
  hot_.aborted_at_stop = m->Cell(ids.aborted_at_stop, index_);
  hot_.conn_open = m->Cell(ids.conn_open, index_);
  hot_.timeouts[0] = m->Cell(ids.timeouts_handshake, index_);
  hot_.timeouts[1] = m->Cell(ids.timeouts_idle, index_);
  hot_.timeouts[2] = m->Cell(ids.timeouts_read, index_);
  hot_.timeouts[3] = m->Cell(ids.timeouts_write, index_);
  hot_.timeouts[4] = m->Cell(ids.timeouts_lifetime, index_);
  hot_.pool_evictions = m->Cell(ids.pool_evictions, index_);
  hot_.drained_gracefully = m->Cell(ids.drained_gracefully, index_);
  hot_.queue_wait = m->HistCell(ids.queue_wait, index_);
  hot_.request_latency = m->HistCell(ids.request_latency, index_);
  if (shared_->director != nullptr) {
    hot_.steer_owner_accepts = m->Cell(ids.steer_owner_accepts, index_);
    hot_.steer_cross_accepts = m->Cell(ids.steer_cross_accepts, index_);
  }
  size_t num_queues = shared_->queues.size();
  hot_.queue_len.resize(num_queues);
  for (size_t qi = 0; qi < num_queues; ++qi) {
    hot_.queue_len[qi] = m->Cell(ids.queue_len, static_cast<int>(qi));
  }
  // Batch scratch state: sized once here, reused every batch.
  enq_.q.resize(num_queues);
  enq_.touched.reserve(num_queues);
  deq_.q.resize(num_queues);
  deq_.touched.reserve(num_queues);
}

void Reactor::Run() {
  if (shared_->pin_threads) {
    PinCurrentThreadToCpu(index_);
  }
  ResolveHotCells();
  // Hardware profiling: open this thread's counter group AFTER pinning so
  // the counters follow the reactor's core. Never fails -- an unavailable
  // PMU yields an inactive profile (phase entries only).
  prof_ = shared_->hwprof != nullptr ? shared_->hwprof->AttachThread(index_) : nullptr;

  // One source per listener: this reactor's shard of a per-shard listener,
  // or the single shared fd (stock mode, and UNIX sockets always -- every
  // reactor polls it, level-triggered, so a shared listener herds like
  // stock accept while per-shard ones stay private). Accepts land on this
  // core's ring outside stock mode regardless of which fd produced them.
  // Sources are derived BEFORE the backend comes up: the uring engine wants
  // the full startup fd set for fixed-file registration.
  sources_.clear();
  std::vector<int> listen_fds;
  for (RtListener* listener : shared_->listeners) {
    int fd = listener->fds.size() == 1 ? listener->fds[0]
                                       : listener->fds[static_cast<size_t>(index_)];
    uint32_t qi = shared_->mode == RtMode::kStock ? 0u : static_cast<uint32_t>(index_);
    ListenSource src;
    src.fd = fd;
    src.qi = qi;
    src.listener = listener;
    src.watch_gen = watch_gen_seed_++;
    sources_.push_back(src);
    listen_fds.push_back(fd);
  }
  base_sources_ = sources_.size();

  // The event engine. The Runtime already probed and resolved the kind; a
  // per-reactor uring setup failure (rlimit on locked memory, seccomp) still
  // degrades to a private epoll engine rather than losing the core.
  io_.reset();
  if (shared_->backend == io::IoBackendKind::kUring) {
    std::unique_ptr<io::UringBackend> uring(new io::UringBackend(index_, shared_->sys));
    std::string err;
    if (uring->Init(&err)) {
      if (shared_->uring_fixed_files) {
        uring->RegisterListenFds(listen_fds);
      }
      io_ = std::move(uring);
    } else {
      std::fprintf(stderr, "rt: reactor %d: uring init failed (%s); falling back to epoll\n",
                   index_, err.c_str());
    }
  }
  if (io_ == nullptr) {
    io_ = io::CreateIoBackend(io::IoBackendKind::kEpoll, index_, shared_->sys);
    std::string err;
    if (!io_->Init(&err)) {
      io_.reset();
      return;
    }
  }
  for (ListenSource& src : sources_) {
    src.watching = io_->WatchListen(src.fd, io::MakeListenToken(src.fd, src.watch_gen));
  }
  open_head_ = kNullConn;
  open_count_ = 0;
  // The deadline wheel, anchored to the shared clock's current reading.
  // Built even when no deadline class is enabled (EvictIdleConns and the
  // close path cancel through it unconditionally); Advance fast-forwards in
  // O(1) while nothing is armed.
  wheel_.reset(new timer::TimerWheel(
      shared_->timer_resolution_ns,
      shared_->clock != nullptr ? shared_->clock->NowNs() : 0));
  drain_unwatched_ = false;

  // EMFILE rescue reserve: one fd held back so fd exhaustion can still
  // accept-and-RST (keeping the backlog moving) instead of wedging.
  reserve_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
  backoff_ms_ = 0;
  backoff_until_ = std::chrono::steady_clock::time_point{};
  drop_bucket_.reset(
      new fault::TokenBucket(shared_->drop_budget_per_sec, std::chrono::steady_clock::now()));

  bool migrate = shared_->director != nullptr && shared_->migrate_interval_ms > 0;
  auto migrate_period = std::chrono::milliseconds(
      migrate ? shared_->migrate_interval_ms : 1);
  auto next_migrate = std::chrono::steady_clock::now() + migrate_period;

  bool watchdog = shared_->domains != nullptr && shared_->watchdog_timeout_ms > 0;
  std::unique_ptr<fault::WatchdogMonitor> monitor;
  auto watchdog_period = std::chrono::milliseconds(
      watchdog ? std::max(1, shared_->watchdog_timeout_ms / 4) : 1);
  auto next_watchdog = std::chrono::steady_clock::now() + watchdog_period;
  if (watchdog) {
    monitor.reset(new fault::WatchdogMonitor(
        shared_->domains, index_,
        std::chrono::milliseconds(shared_->watchdog_timeout_ms)));
  }

  // The listen shard is usually the only registered source; adopted shards
  // from dead peers join the set after a failover, so events are dispatched
  // per fd.
  io::IoEvent events[64];
  Accepted pending[64];  // uring CQE-delivered fds staged for AdmitBatch
  while (!shared_->stop.load(std::memory_order_acquire)) {
    if (shared_->domains != nullptr) {
      shared_->domains->Beat(index_);
      if (shared_->domains->IsDead(index_)) {
        // A peer failed us over while we were stalled; reverse it.
        SelfRecover();
      }
    }
    if (shared_->draining.load(std::memory_order_acquire) && !drain_unwatched_) {
      // Graceful drain: stop accepting (unwatch every listen source) but
      // keep serving queued and open connections. Accepted fds still in a
      // completion engine's CQE pipeline are real connections and are
      // admitted below regardless.
      for (ListenSource& src : sources_) {
        if (src.watching) {
          io_->UnwatchListen(src.fd, io::MakeListenToken(src.fd, src.watch_gen));
          ++src.watch_gen;
          src.watching = false;
        }
      }
      drain_unwatched_ = true;
    }
    // The 1 ms cap keeps stop and cross-ring work (stolen connections pushed
    // by other shards) noticed even when our own shard is idle; the wheel's
    // next deadline can only shorten the sleep below it.
    Prof(obs::hwprof::Phase::kEpollWait);
    int n = io_->Wait(events, 64, NextWaitTimeoutMs());
    if (n == fault::SysIface::kKillReactor) {
      // The chaos plan killed this reactor: exit as if the thread died.
      // Deliberately no recovery, no draining -- the watchdog and the
      // surviving peers own everything from here.
      break;
    }
    if (n > 0) {
      hot_.epoll_wakeups->fetch_add(1, std::memory_order_relaxed);
      int npend = 0;
      uint32_t owner_accepts = 0;
      uint32_t cross_accepts = 0;
      auto now = std::chrono::steady_clock::now();
      for (int i = 0; i < n; ++i) {
        const io::IoEvent& ev = events[i];
        if (io::IsConnToken(ev.token)) {
          ConnHandle handle = io::HandleOfToken(ev.token);
          PendingConn* conn = shared_->pool->Get(handle);
          if (conn == nullptr ||
              io::GenOfToken(ev.token) != conn->io_gen.load(std::memory_order_relaxed)) {
            continue;  // stale completion: the conn closed, the block moved on
          }
          if (io_->oneshot_arms()) {
            conn->svc.armed = 0;  // the delivered one-shot consumed its registration
          }
          Prof(obs::hwprof::Phase::kServe);
          DriveConn(handle, ev.events);
          continue;
        }
        int fd = io::FdOfListenToken(ev.token);
        size_t si = 0;
        while (si < sources_.size() && sources_[si].fd != fd) {
          ++si;
        }
        if (si == sources_.size()) {
          // A CQE from a source released between harvests (failover
          // recovery): any fd inside is still a real connection the kernel
          // accepted on our behalf; dispose of it in order.
          if (ev.accepted_fd >= 0) {
            hot_.accepted->fetch_add(1, std::memory_order_relaxed);
            hot_.overflow_drops->fetch_add(1, std::memory_order_relaxed);
            shared_->sys->Close(index_, ev.accepted_fd);
          }
          continue;
        }
        ListenSource& src = sources_[si];
        if (io_->accepts_inline()) {
          // Readiness engine: the event only says "accept4 will succeed".
          Prof(obs::hwprof::Phase::kAccept);
          AcceptBatch(si);
          continue;
        }
        // Completion engine: the CQE itself carries the accept. The watch
        // generation gates the control bits (rewatch/error) of a canceled
        // epoch's late CQEs; accepted fds are real regardless and are
        // admitted even from a stale generation (dropping them would leak).
        const bool current = io::GenOfToken(ev.token) == src.watch_gen;
        if (ev.accepted_fd >= 0) {
          int afd = ev.accepted_fd;
          backoff_ms_ = 0;  // fds are flowing again: reset the exponential window
          if (src.listener == nullptr || !src.listener->is_unix) {
            // Same Nagle rationale as the accept4 path; the listener kind
            // stands in for the peer family multishot accept cannot report.
            int one = 1;
            setsockopt(afd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          }
          size_t qi = src.qi;
          if (shared_->director != nullptr && src.listener != nullptr &&
              src.listener->id == 0 && !src.listener->is_unix) {
            // Steering key recovery: multishot accept delivers no peer
            // address, so one getpeername (only when steering is on) finds
            // the source port whose flow group owns this connection.
            sockaddr_storage peer;
            socklen_t peer_len = sizeof(peer);
            if (getpeername(afd, reinterpret_cast<sockaddr*>(&peer), &peer_len) == 0 &&
                peer.ss_family == AF_INET) {
              CoreId owner = shared_->director->OwnerOfPort(
                  ntohs(reinterpret_cast<const sockaddr_in*>(&peer)->sin_port));
              if (owner >= 0 && owner < shared_->num_reactors) {
                qi = static_cast<size_t>(owner);
              }
            }
            if (qi == static_cast<size_t>(index_)) {
              ++owner_accepts;
            } else {
              ++cross_accepts;
            }
          }
          if (npend == 64) {
            Prof(obs::hwprof::Phase::kAccept);
            AdmitBatch(pending, npend, now);
            npend = 0;
          }
          pending[npend].fd = afd;
          pending[npend].qi = static_cast<uint32_t>(qi);
          pending[npend].src = static_cast<uint32_t>(si);
          ++npend;
        } else if (ev.error != 0 && current) {
          // The multishot accept terminated with an error: same per-class
          // counters as the accept4 soft-skip path, and the same EMFILE
          // rescue. The terminal CQE also sets rewatch below.
          if (ev.error == EMFILE || ev.error == ENFILE) {
            FdExhaustionRescue(src.fd);
          } else if (ev.error == ECONNABORTED) {
            hot_.accept_econnaborted->fetch_add(1, std::memory_order_relaxed);
          } else if (ev.error == EPROTO) {
            hot_.accept_eproto->fetch_add(1, std::memory_order_relaxed);
          } else if (ev.error == EINTR) {
            hot_.accept_eintr->fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (ev.rewatch && current) {
          src.watching = false;  // RewatchSources re-arms once the gates allow
        }
      }
      if (npend > 0) {
        Prof(obs::hwprof::Phase::kAccept);
        AdmitBatch(pending, npend, now);
      }
      if (owner_accepts > 0) {
        hot_.steer_owner_accepts->fetch_add(owner_accepts, std::memory_order_relaxed);
      }
      if (cross_accepts > 0) {
        hot_.steer_cross_accepts->fetch_add(cross_accepts, std::memory_order_relaxed);
      }
    } else if (n < 0) {
      break;  // hard engine error (the backends swallow EINTR themselves)
    }
    Prof(obs::hwprof::Phase::kServe);
    int served = ServeBatch();
    if (n <= 0 && served == 0) {
      // Nothing local and nothing accepted: one widened pass before going
      // back to sleep (the paper's "polling" order).
      ServeOne(/*idle=*/true);
      FlushDequeues();
    }
    Prof(obs::hwprof::Phase::kMaintenance);
    if (shared_->deadlines_enabled) {
      wheel_->Advance(shared_->clock->NowNs(),
                      [this](timer::TimerEntry* e) { OnDeadlineExpiry(e); });
    }
    auto now = std::chrono::steady_clock::now();
    if (!io_->accepts_inline() && !drain_unwatched_) {
      RewatchSources(now);
    }
    if (migrate && now >= next_migrate) {
      // The paper's long-term balancer: every 100 ms each (non-busy) core
      // makes its own migration decision. The epoll timeout above bounds
      // how late a tick can fire.
      MigrationTick();
      next_migrate += migrate_period;
    }
    if (watchdog && now >= next_watchdog) {
      WatchdogTick(monitor.get());
      next_watchdog += watchdog_period;
    }
  }
  Prof(obs::hwprof::Phase::kMaintenance);
  FlushDequeues();
  // Close every connection still mid-conversation -- on the orderly stop
  // path AND the chaos kill path (a killed reactor models a dead process,
  // whose fds the kernel would close; doing it here keeps the pool drained
  // and the conservation ledger exact). Counted as aborted, never served.
  CloseAllOpen();
  if (prof_ != nullptr) {
    shared_->hwprof->DetachThread(index_);
    prof_ = nullptr;
  }
  if (reserve_fd_ >= 0) {
    close(reserve_fd_);
    reserve_fd_ = -1;
  }
  io_->Shutdown();
  io_.reset();
}

void Reactor::MigrationTick() {
  ++migrate_tick_;
  steer::Migration m;
  bool suppressed = false;
  if (!shared_->director->MigrateForCore(index_, shared_->policy, migrate_tick_, &m,
                                         &suppressed)) {
    if (suppressed) {
      // A victim was due but hysteresis vetoed every candidate group: the
      // anti-flapping guard held (FDir-reordering paper), not load balance.
      shared_->metrics->Add(shared_->ids.migrations_suppressed, index_);
    }
    return;
  }
  shared_->metrics->Add(shared_->ids.migrations, index_);
  shared_->metrics->GaugeSet(shared_->ids.groups_owned, static_cast<int>(m.from_core),
                             static_cast<uint64_t>(shared_->director->table().OwnedBy(m.from_core)));
  shared_->metrics->GaugeSet(shared_->ids.groups_owned, static_cast<int>(m.to_core),
                             static_cast<uint64_t>(shared_->director->table().OwnedBy(m.to_core)));
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kMigrate;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(m.from_core);
    event.dst = static_cast<int16_t>(m.to_core);
    event.group = m.group;
    event.tick = static_cast<uint32_t>(m.tick);
    event.qlen = static_cast<uint32_t>(m.victim_steals);
    shared_->trace->Record(index_, event);
  }
}

void Reactor::WatchdogTick(fault::WatchdogMonitor* monitor) {
  ReleaseRecoveredAdoptions();
  std::vector<int> stalled;
  monitor->Scan(std::chrono::steady_clock::now(), &stalled);
  for (int peer : stalled) {
    if (!shared_->domains->IsDead(peer)) {
      TryFailover(peer);
    }
  }
}

void Reactor::TryFailover(int dead) {
  std::lock_guard<std::mutex> lock(shared_->failover_mu);
  if (!shared_->domains->MarkDead(dead)) {
    return;  // another reactor won, or the peer is already dead
  }
  // From here this reactor owns the failover actions; the mutex keeps a
  // concurrently-recovering peer from interleaving with them.
  shared_->metrics->Add(shared_->ids.failovers, index_);
  shared_->metrics->GaugeSet(shared_->ids.reactor_dead, dead, 1);
  if (shared_->policy != nullptr) {
    // Permanently busy: peers steal the dead ring dry, and the migration
    // loop never picks the dead core as a destination.
    shared_->policy->SetForcedBusy(dead, true);
    shared_->metrics->GaugeSet(shared_->ids.busy, dead, 1);
  }
  if (shared_->director != nullptr) {
    size_t moved = shared_->director->FailOverCore(dead, shared_->policy, migrate_tick_);
    if (moved > 0) {
      shared_->metrics->Add(shared_->ids.failover_group_moves, index_,
                            static_cast<uint64_t>(moved));
      for (int c = 0; c < shared_->num_reactors; ++c) {
        shared_->metrics->GaugeSet(shared_->ids.groups_owned, c,
                                   static_cast<uint64_t>(shared_->director->table().OwnedBy(c)));
      }
    }
  }
  // Adopt the dead peer's listen shards -- one per per-shard listener:
  // SYNs the kernel already queued there (and, in fallback steering, keeps
  // hashing there) would otherwise strand. Shared-fd listeners (UNIX
  // sockets, stock mode) need no adoption; every reactor polls them
  // already. Accepts land on the dead core's ring by default, where
  // forced-busy stealing drains them. A draining runtime adopts nothing:
  // accepting is over for everyone.
  if (shared_->mode != RtMode::kStock &&
      !shared_->draining.load(std::memory_order_acquire)) {
    for (RtListener* listener : shared_->listeners) {
      if (listener->fds.size() != static_cast<size_t>(shared_->num_reactors) ||
          dead >= static_cast<int>(listener->fds.size())) {
        continue;
      }
      int lfd = listener->fds[static_cast<size_t>(dead)];
      ListenSource src;
      src.fd = lfd;
      src.qi = static_cast<uint32_t>(dead);
      src.listener = listener;
      // A fresh generation even if this fd was adopted before: a previous
      // adoption epoch's terminal CQE may still be in flight.
      src.watch_gen = watch_gen_seed_++;
      src.watching = io_->WatchListen(lfd, io::MakeListenToken(lfd, src.watch_gen));
      if (src.watching) {
        sources_.push_back(src);
      }
    }
  }
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kReactorDead;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(dead);
    event.tick = static_cast<uint32_t>(migrate_tick_);
    shared_->trace->Record(index_, event);
  }
}

void Reactor::SelfRecover() {
  std::lock_guard<std::mutex> lock(shared_->failover_mu);
  if (!shared_->domains->MarkAlive(index_)) {
    return;
  }
  shared_->metrics->Add(shared_->ids.recoveries, index_);
  shared_->metrics->GaugeSet(shared_->ids.reactor_dead, index_, 0);
  if (shared_->policy != nullptr) {
    shared_->policy->SetForcedBusy(index_, false);
    shared_->metrics->GaugeSet(shared_->ids.busy, index_,
                               shared_->policy->IsBusy(index_) ? 1 : 0);
  }
  if (shared_->director != nullptr) {
    size_t returned = shared_->director->RecoverCore(index_, migrate_tick_);
    if (returned > 0) {
      shared_->metrics->Add(shared_->ids.failover_group_moves, index_,
                            static_cast<uint64_t>(returned));
      for (int c = 0; c < shared_->num_reactors; ++c) {
        shared_->metrics->GaugeSet(shared_->ids.groups_owned, c,
                                   static_cast<uint64_t>(shared_->director->table().OwnedBy(c)));
      }
    }
  }
  // The adopter still holds our listen fd in its epoll until its next
  // watchdog tick (ReleaseRecoveredAdoptions); the brief double-drain is
  // harmless -- accept4 hands each connection to exactly one caller.
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kReactorRecover;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(index_);
    event.tick = static_cast<uint32_t>(migrate_tick_);
    shared_->trace->Record(index_, event);
  }
}

void Reactor::ReleaseRecoveredAdoptions() {
  if (sources_.size() <= base_sources_) {
    return;
  }
  for (size_t i = sources_.size(); i-- > base_sources_;) {
    if (!shared_->domains->IsDead(static_cast<int>(sources_[i].qi))) {
      io_->UnwatchListen(sources_[i].fd,
                         io::MakeListenToken(sources_[i].fd, sources_[i].watch_gen));
      sources_.erase(sources_.begin() + static_cast<long>(i));
    }
  }
}

void Reactor::RecordBusyFlip(size_t queue, size_t len_after) {
  bool now_busy = shared_->policy->IsBusy(static_cast<CoreId>(queue));
  shared_->metrics->Add(now_busy ? shared_->ids.to_busy : shared_->ids.to_nonbusy,
                        static_cast<int>(queue));
  shared_->metrics->GaugeSet(shared_->ids.busy, static_cast<int>(queue), now_busy ? 1 : 0);
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = now_busy ? obs::TraceEventType::kBusyOn : obs::TraceEventType::kBusyOff;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(queue);
    event.ewma = shared_->policy->EwmaValue(static_cast<CoreId>(queue));
    event.qlen = static_cast<uint32_t>(len_after);
    shared_->trace->Record(index_, event);
  }
}

void Reactor::RstClose(int fd) {
  // SO_LINGER{on, 0}: close() sends a reset instead of an orderly FIN, so
  // the shed client fails fast (ECONNRESET) rather than reading a clean EOF
  // it could mistake for service.
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  shared_->sys->Close(index_, fd);
}

bool Reactor::ShedOrDrop(int fd, size_t qi, std::chrono::steady_clock::time_point now) {
  if (shared_->overload == OverloadPolicy::kAcceptThenRst && drop_bucket_->TryTake(now)) {
    RstClose(fd);
    if (shared_->trace != nullptr) {
      obs::TraceEvent event;
      event.type = obs::TraceEventType::kAdmissionShed;
      event.core = static_cast<int16_t>(index_);
      event.src = static_cast<int16_t>(qi);
      event.qlen = static_cast<uint32_t>(shared_->queues[qi]->size());
      shared_->trace->Record(index_, event);
    }
    return true;
  }
  // kLeaveInBacklog, or the RST budget is dry: orderly close, counted as an
  // overflow drop -- the stage-1 backlog gate does the actual pushing back.
  shared_->sys->Close(index_, fd);
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kOverflowDrop;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(qi);
    event.qlen = static_cast<uint32_t>(shared_->queues[qi]->capacity());
    shared_->trace->Record(index_, event);
  }
  return false;
}

void Reactor::FdExhaustionRescue(int listen_fd) {
  hot_.accept_emfile->fetch_add(1, std::memory_order_relaxed);
  if (reserve_fd_ >= 0) {
    // Burn the reserve to accept exactly one connection and RST it: the
    // client gets a fast failure instead of hanging in a backlog no fd can
    // drain, and the backlog keeps moving.
    close(reserve_fd_);
    reserve_fd_ = -1;
    sockaddr_storage peer;
    socklen_t peer_len = sizeof(peer);
    int fd = shared_->sys->Accept4(index_, listen_fd, reinterpret_cast<sockaddr*>(&peer),
                                   &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      RstClose(fd);
      hot_.accepted->fetch_add(1, std::memory_order_relaxed);
      hot_.admission_shed->fetch_add(1, std::memory_order_relaxed);
      if (shared_->trace != nullptr) {
        obs::TraceEvent event;
        event.type = obs::TraceEventType::kAdmissionShed;
        event.core = static_cast<int16_t>(index_);
        event.src = static_cast<int16_t>(index_);
        shared_->trace->Record(index_, event);
      }
    }
    reserve_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
  }
  // Capped exponential backoff: stop hammering accept4 while the process is
  // out of fds; the kernel backlog holds the line meanwhile.
  backoff_ms_ = backoff_ms_ == 0 ? kBackoffFirstMs : std::min(backoff_ms_ * 2, kBackoffCapMs);
  backoff_until_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(backoff_ms_);
  hot_.accept_backoff->fetch_add(1, std::memory_order_relaxed);
}

void Reactor::AcceptBatch(size_t src_idx) {
  const ListenSource& src = sources_[src_idx];
  const size_t default_qi = src.qi;
  auto now = std::chrono::steady_clock::now();
  if (now < backoff_until_) {
    return;  // fd-exhaustion backoff window: leave the backlog queued
  }
  int limit = shared_->accept_batch < kMaxAcceptBatch ? shared_->accept_batch : kMaxAcceptBatch;
  // Steering decisions apply only to the primary TCP listener: its source
  // ports are the flow-group key. Extra ports and UNIX sockets keep plain
  // accepting-core affinity.
  const bool steer = shared_->director != nullptr && src.listener != nullptr &&
                     src.listener->id == 0 && !src.listener->is_unix;

  // Stage 1: drain the kernel queue until EAGAIN (or the cap) into a stack
  // array -- no bookkeeping between accept4 calls, so the kernel side is
  // drained as fast as the syscall allows.
  Accepted batch[kMaxAcceptBatch];
  int n = 0;
  uint32_t owner_accepts = 0;
  uint32_t cross_accepts = 0;
  uint32_t eintr = 0;
  uint32_t aborted = 0;
  uint32_t eproto = 0;
  int soft_skips = 0;
  bool fd_exhausted = false;
  while (n < limit) {
    if (shared_->overload == OverloadPolicy::kLeaveInBacklog) {
      // Admission gate: a full local ring stops the drain so the burst
      // queues in the kernel backlog instead of being accepted into a drop.
      const AcceptRing& ring = *shared_->queues[default_qi];
      if (ring.size() >= ring.capacity()) {
        break;
      }
    }
    sockaddr_storage peer;
    socklen_t peer_len = sizeof(peer);
    int fd = shared_->sys->Accept4(index_, src.fd, reinterpret_cast<sockaddr*>(&peer),
                                   &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // Soft errors are skip-and-continue with a per-class counter: the
      // connection behind an ECONNABORTED/EPROTO is gone, and EINTR aborted
      // nothing -- neither says the listen socket is bad. The skip budget
      // bounds an injected errno burst to one batch's worth of retries.
      if (errno == EINTR) {
        ++eintr;
        if (++soft_skips <= limit) continue;
      } else if (errno == ECONNABORTED) {
        ++aborted;
        if (++soft_skips <= limit) continue;
      } else if (errno == EPROTO) {
        ++eproto;
        if (++soft_skips <= limit) continue;
      } else if (errno == EMFILE || errno == ENFILE) {
        fd_exhausted = true;
      }
      break;  // EAGAIN (drained), or a hard error: retry next wakeup
    }
    if (peer.ss_family == AF_INET) {
      // The response is written as two small segments (length header, then
      // payload); without TCP_NODELAY, Nagle holds the second until the
      // client's delayed ACK (~40 ms) -- fatal for request/response latency.
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    size_t qi = default_qi;
    if (steer && peer.ss_family == AF_INET) {
      // Flow-group steering: the connection belongs to whichever core owns
      // its source port's group. With cBPF attached the kernel already
      // delivered the SYN to the owner's shard, so owner == self except
      // for connections in flight across a migration; in fallback mode
      // this re-steer IS the steering (one cross-core ring push).
      CoreId owner = shared_->director->OwnerOfPort(
          ntohs(reinterpret_cast<const sockaddr_in*>(&peer)->sin_port));
      if (owner >= 0 && owner < shared_->num_reactors) {
        qi = static_cast<size_t>(owner);
      }
      if (qi == static_cast<size_t>(index_)) {
        ++owner_accepts;
      } else {
        ++cross_accepts;
      }
    }
    batch[n].fd = fd;
    batch[n].qi = static_cast<uint32_t>(qi);
    batch[n].src = static_cast<uint32_t>(src_idx);
    ++n;
  }
  if (eintr > 0) {
    hot_.accept_eintr->fetch_add(eintr, std::memory_order_relaxed);
  }
  if (aborted > 0) {
    hot_.accept_econnaborted->fetch_add(aborted, std::memory_order_relaxed);
  }
  if (eproto > 0) {
    hot_.accept_eproto->fetch_add(eproto, std::memory_order_relaxed);
  }
  if (n > 0) {
    backoff_ms_ = 0;  // fd pressure is over: reset the exponential window
  }
  if (fd_exhausted) {
    FdExhaustionRescue(src.fd);
  }
  if (n == 0) {
    return;
  }
  AdmitBatch(batch, n, now);
  if (owner_accepts > 0) {
    hot_.steer_owner_accepts->fetch_add(owner_accepts, std::memory_order_relaxed);
  }
  if (cross_accepts > 0) {
    hot_.steer_cross_accepts->fetch_add(cross_accepts, std::memory_order_relaxed);
  }
}

void Reactor::AdmitBatch(const Accepted* batch, int n,
                         std::chrono::steady_clock::time_point now) {
  // Stage 2: pool blocks + ring pushes, aggregating per-ring counts.
  // Connections that cannot be queued go through the admission policy:
  // RST-shed while the drop budget lasts, orderly close otherwise.
  uint32_t overflow_drops = 0;
  uint32_t admission_sheds = 0;
  uint32_t pool_drops = 0;
  for (int i = 0; i < n; ++i) {
    const Accepted& a = batch[i];
    ListenSource& src = sources_[a.src];
    if (src.listener != nullptr) {
      src.listener->accepted.fetch_add(1, std::memory_order_relaxed);
    }
    size_t qi = a.qi;
    ConnHandle handle = shared_->pool->Alloc(index_);
    if (handle == kNullConn && shared_->pool_evict_batch > 0 &&
        EvictIdleConns(shared_->pool_evict_batch) > 0) {
      // Pool pressure: the oldest idle conns (slowloris holders, by
      // definition of idle) were just reaped, so the retry usually
      // succeeds -- new work displaces dead weight instead of being shed.
      handle = shared_->pool->Alloc(index_);
    }
    if (handle == kNullConn) {
      // Arena exhausted (sized to cover every ring plus a batch, so this
      // means the rings are full anyway): same disposition as a ring
      // overflow, plus its own counter.
      ++pool_drops;
      if (ShedOrDrop(a.fd, qi, now)) {
        ++admission_sheds;
      } else {
        ++overflow_drops;
      }
      continue;
    }
    PendingConn* conn = shared_->pool->Get(handle);
    conn->fd = a.fd;
    conn->accept_core = static_cast<int16_t>(index_);
    conn->serve_core = -1;
    conn->accepted_at = std::chrono::steady_clock::now();
    conn->svc.Reset(src.listener != nullptr ? static_cast<uint8_t>(src.listener->id) : 0);
    size_t len_after = 0;
    if (!shared_->queues[qi]->Push(handle, &len_after)) {
      shared_->pool->Free(index_, handle);  // we just allocated it: local free
      if (ShedOrDrop(a.fd, qi, now)) {
        ++admission_sheds;
      } else {
        ++overflow_drops;
      }
      if (!io_->accepts_inline() && shared_->overload == OverloadPolicy::kLeaveInBacklog &&
          src.watching) {
        // A completion engine cannot stop draining mid-batch the way the
        // accept4 gate does -- the kernel keeps accepting behind the
        // multishot SQE. Going dormant is the equivalent backpressure:
        // cancel the accept so later connections stay in the listen backlog
        // until the ring has room again (RewatchSources).
        io_->UnwatchListen(src.fd, io::MakeListenToken(src.fd, src.watch_gen));
        ++src.watch_gen;
        src.watching = false;
      }
      continue;
    }
    enq_.NoteMove(qi, len_after);
  }

  // Stage 3: one flush per touched ring -- queue-length gauge and the
  // policy's EWMA/watermark update see the post-batch state once.
  hot_.accepted->fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  if (overflow_drops > 0) {
    hot_.overflow_drops->fetch_add(overflow_drops, std::memory_order_relaxed);
  }
  if (admission_sheds > 0) {
    hot_.admission_shed->fetch_add(admission_sheds, std::memory_order_relaxed);
  }
  if (pool_drops > 0) {
    hot_.pool_exhausted->fetch_add(pool_drops, std::memory_order_relaxed);
  }
  for (uint32_t qi : enq_.touched) {
    QueueBatch::PerQueue& entry = enq_.q[qi];
    hot_.queue_len[qi]->store(entry.last_len, std::memory_order_relaxed);
    if (shared_->policy != nullptr &&
        shared_->policy->OnEnqueueBatch(static_cast<CoreId>(qi), entry.moved, entry.last_len)) {
      RecordBusyFlip(qi, entry.last_len);
    }
    entry.moved = 0;
  }
  enq_.touched.clear();
}

void Reactor::RewatchSources(std::chrono::steady_clock::time_point now) {
  for (ListenSource& src : sources_) {
    if (src.watching) {
      continue;
    }
    if (now < backoff_until_) {
      continue;  // fd-exhaustion window: stay dormant, the backlog holds
    }
    if (shared_->overload == OverloadPolicy::kLeaveInBacklog) {
      const AcceptRing& ring = *shared_->queues[src.qi];
      if (ring.size() >= ring.capacity()) {
        continue;  // still full: keep the burst queued in the kernel
      }
    }
    if (io_->WatchListen(src.fd, io::MakeListenToken(src.fd, src.watch_gen))) {
      src.watching = true;
    }
  }
}

int Reactor::ServeBatch() {
  int served = 0;
  while (served < shared_->accept_batch && ServeOne(/*idle=*/false)) {
    ++served;
  }
  FlushDequeues();
  return served;
}

bool Reactor::PopFrom(size_t qi, ConnHandle* out) {
  size_t len_after = 0;
  if (!shared_->queues[qi]->TryPop(out, &len_after)) {
    return false;
  }
  deq_.NoteMove(qi, len_after);
  return true;
}

void Reactor::FlushDequeues() {
  for (uint32_t qi : deq_.touched) {
    QueueBatch::PerQueue& entry = deq_.q[qi];
    hot_.queue_len[qi]->store(entry.last_len, std::memory_order_relaxed);
    if (shared_->policy != nullptr &&
        shared_->policy->OnDequeueBatch(static_cast<CoreId>(qi), entry.moved, entry.last_len)) {
      RecordBusyFlip(qi, entry.last_len);
    }
    entry.moved = 0;
  }
  deq_.touched.clear();
  if (batch_served_local_ > 0) {
    hot_.served_local->fetch_add(batch_served_local_, std::memory_order_relaxed);
    batch_served_local_ = 0;
  }
  if (batch_served_remote_ > 0) {
    hot_.served_remote->fetch_add(batch_served_remote_, std::memory_order_relaxed);
    batch_served_remote_ = 0;
  }
}

void Reactor::RecordSteal(CoreId victim, size_t victim_len_after) {
  shared_->policy->OnSteal(index_, victim);
  hot_.steals->fetch_add(1, std::memory_order_relaxed);
  // Distance ledger: how far this steal reached. LedgerBucket is never 0
  // here (a core does not steal from itself).
  int bucket = topo::LedgerBucket(shared_->topo->Between(index_, victim));
  hot_.steals_dist[bucket - 1]->fetch_add(1, std::memory_order_relaxed);
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kSteal;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(victim);
    event.dst = static_cast<int16_t>(index_);
    event.qlen = static_cast<uint32_t>(victim_len_after);
    shared_->trace->Record(index_, event);
  }
}

bool Reactor::ServeOne(bool idle) {
  ConnHandle conn = kNullConn;

  switch (shared_->mode) {
    case RtMode::kStock: {
      if (!PopFrom(0, &conn)) {
        return false;
      }
      Serve(conn, /*local=*/true);
      return true;
    }

    case RtMode::kFine: {
      // Round-robin over all rings through the shared cursor; every core
      // serves every ring, so there is no connection affinity.
      size_t n = shared_->queues.size();
      size_t start =
          static_cast<size_t>(shared_->rr_cursor.fetch_add(1, std::memory_order_relaxed)) % n;
      for (size_t i = 0; i < n; ++i) {
        size_t qi = (start + i) % n;
        if (PopFrom(qi, &conn)) {
          Serve(conn, qi == static_cast<size_t>(index_));
          return true;
        }
      }
      return false;
    }

    case RtMode::kAffinity: {
      // Same decision sequence as ListenSocket::Accept, driven by the same
      // BalancePolicy: proportional-share steal-first check, local ring,
      // late steal, then (only before sleeping) the widened scan. Dequeue
      // reporting is deferred to the end of the batch, so decisions within
      // one batch see busy bits at most one batch stale.
      BalancePolicy* policy = shared_->policy;
      CoreId me = index_;
      bool self_busy = policy->IsBusy(me);
      bool may_steal = !self_busy && policy->AnyBusy();
      size_t local_len = shared_->queues[static_cast<size_t>(me)]->size();
      bool steal_first = false;
      if (may_steal) {
        steal_first = local_len == 0 || policy->ShouldStealThisTime(me);
      }

      if (steal_first) {
        CoreId victim = policy->PickBusyVictim(me);
        if (victim != kNoCore && PopFrom(static_cast<size_t>(victim), &conn)) {
          Prof(obs::hwprof::Phase::kSteal);
          RecordSteal(victim, shared_->queues[static_cast<size_t>(victim)]->size());
          Serve(conn, /*local=*/false);
          Prof(obs::hwprof::Phase::kServe);
          return true;
        }
      }
      if (PopFrom(static_cast<size_t>(me), &conn)) {
        Serve(conn, /*local=*/true);
        return true;
      }
      if (may_steal && !steal_first) {
        CoreId victim = policy->PickBusyVictim(me);
        if (victim != kNoCore && PopFrom(static_cast<size_t>(victim), &conn)) {
          Prof(obs::hwprof::Phase::kSteal);
          RecordSteal(victim, shared_->queues[static_cast<size_t>(victim)]->size());
          Serve(conn, /*local=*/false);
          Prof(obs::hwprof::Phase::kServe);
          return true;
        }
      }
      if (idle && !self_busy) {
        CoreId victim = policy->PickAnyVictim(me, [this](CoreId c) {
          return shared_->queues[static_cast<size_t>(c)]->size() > 0;
        });
        if (victim != kNoCore && PopFrom(static_cast<size_t>(victim), &conn)) {
          Prof(obs::hwprof::Phase::kSteal);
          RecordSteal(victim, shared_->queues[static_cast<size_t>(victim)]->size());
          Serve(conn, /*local=*/false);
          Prof(obs::hwprof::Phase::kServe);
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

void Reactor::Serve(ConnHandle handle, bool local) {
  PendingConn* conn = shared_->pool->Get(handle);
  hot_.queue_wait->Add(ToNs(std::chrono::steady_clock::now() - conn->accepted_at));
  // The locality ledger's moment of truth: the first serving core is now
  // known. Core locality is a different fact from ring locality (`local`):
  // stock mode's one shared ring makes every pop ring-local, and steering
  // can queue a conn on a third core's ring -- the ledger compares CORES.
  conn->serve_core = static_cast<int16_t>(index_);
  bool core_local = conn->accept_core == static_cast<int16_t>(index_);
  // Distance ledger: how far this request travelled from its accepting
  // core (0 local, then LedgerBucket's same-LLC / cross-LLC / cross-node).
  int dist_bucket = core_local
                        ? 0
                        : topo::LedgerBucket(shared_->topo->Between(
                              static_cast<CoreId>(conn->accept_core), index_));
  if (!core_local) {
    hot_.conn_migrations->fetch_add(1, std::memory_order_relaxed);
  }
  svc::ConnHandler* handler = shared_->listeners[conn->svc.listener]->handler;
  if (handler == nullptr) {
    // The legacy accept workload: one byte, then an orderly close. Enough
    // for the load client to observe end-to-end completion; per-connection
    // application work is what the handlers above this path add.
    if (local) {
      ++batch_served_local_;
    } else {
      ++batch_served_remote_;
    }
    if (core_local) {
      hot_.requests_local_core->fetch_add(1, std::memory_order_relaxed);
    } else {
      hot_.requests_remote_core->fetch_add(1, std::memory_order_relaxed);
      hot_.requests_dist[dist_bucket - 1]->fetch_add(1, std::memory_order_relaxed);
    }
    char byte = 'A';
    (void)send(conn->fd, &byte, 1, MSG_NOSIGNAL);
    shared_->sys->Close(index_, conn->fd);
    // Return the block to the accepting core's pool -- the paper's remote
    // deallocation when this connection was stolen or re-steered here.
    FreeConn(handle);
    return;
  }
  // Request/response: the connection enters service on THIS reactor and
  // stays here until a close verdict -- the locality decision was made at
  // the pop, so it is recorded now and accounted at close.
  svc::ConnState& st = conn->svc;
  st.remote_served = !local;
  st.accept_local = core_local;
  st.accept_dist = static_cast<uint8_t>(dist_bucket);
  st.opened = true;
  OpenListAdd(handle, conn);
  ++open_count_;
  hot_.conn_open->store(open_count_, std::memory_order_relaxed);
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kConnOpen;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(st.listener);
    shared_->trace->Record(index_, event);
  }
  // The absolute lifetime cap starts at first service touch and never
  // re-arms; it rides in the pool block like the phase timer, on THIS
  // reactor's wheel (the conn is pinned here until close).
  if (shared_->max_lifetime_ns > 0) {
    wheel_->Arm(&conn->life_timer, shared_->clock->NowNs() + shared_->max_lifetime_ns,
                static_cast<uint8_t>(DeadlineKind::kLifetime),
                static_cast<uint64_t>(handle));
  }
  svc::ConnRef ref{&st, conn->fd, index_, shared_->sys};
  uint16_t prev = st.rounds_done;
  svc::Verdict verdict = handler->OnAccept(ref);
  NoteRounds(conn, prev);
  Finish(handle, conn, verdict);
}

void Reactor::DriveConn(ConnHandle handle, uint32_t ev_events) {
  PendingConn* conn = shared_->pool->Get(handle);
  svc::ConnState& st = conn->svc;
  if ((ev_events & (EPOLLERR | EPOLLHUP)) != 0 && (ev_events & (EPOLLIN | EPOLLOUT)) == 0) {
    // Pure error readiness (peer RST with nothing readable): no callback
    // could make progress, so close directly. OnClose still runs.
    CloseConn(handle, conn, /*rst=*/false);
    return;
  }
  svc::ConnHandler* handler = shared_->listeners[st.listener]->handler;
  svc::ConnRef ref{&st, conn->fd, index_, shared_->sys};
  uint16_t prev = st.rounds_done;
  svc::Verdict verdict = st.phase == svc::ConnPhase::kWriting ? handler->OnWritable(ref)
                                                              : handler->OnReadable(ref);
  NoteRounds(conn, prev);
  Finish(handle, conn, verdict);
}

void Reactor::NoteRounds(PendingConn* conn, uint16_t prev_rounds) {
  uint16_t done = conn->svc.rounds_done;
  if (done == prev_rounds) {
    return;
  }
  // A completed round retires the current phase deadline: the next verdict
  // arms a fresh one for the next request. Progress WITHIN a phase (partial
  // request bytes, partial response flushes) deliberately does not reach
  // here -- that is the slowloris defense.
  if (shared_->deadlines_enabled) {
    wheel_->Cancel(&conn->phase_timer);
  }
  uint32_t delta = static_cast<uint32_t>(done - prev_rounds);
  hot_.requests->fetch_add(delta, std::memory_order_relaxed);
  // Ledger: these rounds ran on the core recorded at Serve() time. A held
  // connection never changes reactors mid-conversation, so the bucket set
  // there is exact for every round.
  if (conn->svc.accept_local) {
    hot_.requests_local_core->fetch_add(delta, std::memory_order_relaxed);
  } else {
    hot_.requests_remote_core->fetch_add(delta, std::memory_order_relaxed);
    hot_.requests_dist[conn->svc.accept_dist - 1]->fetch_add(delta,
                                                             std::memory_order_relaxed);
  }
  // One handler call can complete several rounds back-to-back (requests
  // already queued in the socket buffer); the per-round latencies are then
  // within one pump of each other, so the last one stands in for the batch.
  for (uint32_t i = 0; i < delta; ++i) {
    hot_.request_latency->Add(conn->svc.last_request_ns);
  }
}

void Reactor::Finish(ConnHandle handle, PendingConn* conn, svc::Verdict verdict) {
  switch (verdict) {
    case svc::Verdict::kWantRead:
      if (Arm(handle, conn, EPOLLIN) && shared_->deadlines_enabled) {
        ArmPhaseDeadline(handle, conn, /*want_read=*/true);
      }
      return;
    case svc::Verdict::kWantWrite:
      if (Arm(handle, conn, EPOLLOUT) && shared_->deadlines_enabled) {
        ArmPhaseDeadline(handle, conn, /*want_read=*/false);
      }
      return;
    case svc::Verdict::kClose:
      CloseConn(handle, conn, /*rst=*/false);
      return;
    case svc::Verdict::kRstClose:
      CloseConn(handle, conn, /*rst=*/true);
      return;
  }
}

bool Reactor::Arm(ConnHandle handle, PendingConn* conn, uint32_t want) {
  svc::ConnState& st = conn->svc;
  if (st.armed == want) {
    return true;  // level-triggered epoll: the existing registration keeps
                  // firing. (A one-shot backend cleared armed at delivery,
                  // so a live uring poll is never spuriously skipped here.)
  }
  uint64_t token = io::MakeConnToken(handle, conn->io_gen.load(std::memory_order_relaxed));
  if (st.armed != 0 && io_->oneshot_arms()) {
    // Direction change with a one-shot still in flight (defensive; the
    // reactor only re-arms after a delivery): cancel it so the stale
    // direction cannot wake this conversation.
    io_->CancelConn(conn->fd, token);
  }
  if (!io_->ArmConn(conn->fd, want, token, st.armed == 0)) {
    // A connection the engine cannot watch would be held forever: fail it
    // fast.
    CloseConn(handle, conn, /*rst=*/true);
    return false;
  }
  st.armed = want;
  return true;
}

void Reactor::ArmPhaseDeadline(ConnHandle handle, PendingConn* conn, bool want_read) {
  const svc::ConnState& st = conn->svc;
  DeadlineKind kind;
  uint64_t timeout_ns;
  if (!want_read) {
    kind = DeadlineKind::kWrite;
    timeout_ns = shared_->write_timeout_ns;
  } else if (st.req_len > 0) {
    kind = DeadlineKind::kRead;
    timeout_ns = shared_->read_timeout_ns;
  } else if (st.rounds_done == 0) {
    kind = DeadlineKind::kHandshake;
    timeout_ns = shared_->handshake_timeout_ns;
  } else {
    kind = DeadlineKind::kIdle;
    timeout_ns = shared_->idle_timeout_ns;
  }
  timer::TimerEntry* e = &conn->phase_timer;
  if (timeout_ns == 0) {
    wheel_->Cancel(e);  // this class is disabled; drop any stale deadline
    return;
  }
  if (e->armed && e->kind == static_cast<uint8_t>(kind)) {
    // Same phase as last time: the absolute deadline stands. This is the
    // slowloris defense -- a client trickling one byte per wakeup changes
    // nothing here, only a phase TRANSITION (or a completed round, which
    // cancels in NoteRounds) buys a fresh deadline.
    return;
  }
  wheel_->Arm(e, shared_->clock->NowNs() + timeout_ns, static_cast<uint8_t>(kind),
              static_cast<uint64_t>(handle));
}

void Reactor::OnDeadlineExpiry(timer::TimerEntry* e) {
  // Every close path cancels both of a conn's entries before the block can
  // recycle, so a fired entry always refers to a conn this reactor still
  // holds open.
  ConnHandle handle = static_cast<ConnHandle>(e->data);
  PendingConn* conn = shared_->pool->Get(handle);
  CloseConn(handle, conn, /*rst=*/true, static_cast<DeadlineKind>(e->kind));
}

int Reactor::NextWaitTimeoutMs() {
  constexpr int kWaitCapMs = 1;
  if (!shared_->deadlines_enabled) {
    return kWaitCapMs;
  }
  uint64_t next = wheel_->NextFireNs();
  if (next == timer::TimerWheel::kNever) {
    return kWaitCapMs;
  }
  uint64_t now_ns = shared_->clock->NowNs();
  if (next <= now_ns) {
    return 0;  // already due: poll, expire, then sleep for real
  }
  uint64_t ms = (next - now_ns + 999'999) / 1'000'000;
  return ms < static_cast<uint64_t>(kWaitCapMs) ? static_cast<int>(ms) : kWaitCapMs;
}

int Reactor::EvictIdleConns(int max_evict) {
  if (max_evict <= 0 || open_head_ == kNullConn) {
    return 0;
  }
  // open_head_ is newest-first, so walk to the tail and reap backwards:
  // eviction takes the OLDEST idle conns. Pass 0 restricts itself to blocks
  // this core owns (a remote-owned free lands on another core's freelist
  // and would not refill the Alloc that just failed); pass 1 runs only if
  // pass 0 freed nothing, relieving global pressure instead.
  ConnHandle tail = open_head_;
  for (;;) {
    ConnHandle next = shared_->pool->Get(tail)->svc.open_next;
    if (next == kNullConn) {
      break;
    }
    tail = next;
  }
  int evicted = 0;
  for (int pass = 0; pass < 2 && evicted == 0; ++pass) {
    ConnHandle h = tail;
    while (h != kNullConn && evicted < max_evict) {
      PendingConn* conn = shared_->pool->Get(h);
      ConnHandle prev = conn->svc.open_prev;
      if (conn->svc.IdleBetweenRequests() &&
          (pass == 1 || shared_->pool->OwnerOf(h) == index_)) {
        // Counted as an idle timeout (the conservation bucket an
        // early-reaped idle conn belongs to) plus the eviction counter.
        CloseConn(h, conn, /*rst=*/true, DeadlineKind::kIdle);
        ++evicted;
      }
      h = prev;
    }
  }
  if (evicted > 0) {
    hot_.pool_evictions->fetch_add(static_cast<uint64_t>(evicted),
                                   std::memory_order_relaxed);
  }
  return evicted;
}

void Reactor::CloseConn(ConnHandle handle, PendingConn* conn, bool rst,
                        DeadlineKind timeout) {
  svc::ConnState& st = conn->svc;
  svc::ConnHandler* handler = shared_->listeners[st.listener]->handler;
  // Retire both deadline entries BEFORE the block can recycle: a dangling
  // armed entry would leave the wheel pointing into a block another core
  // now owns.
  wheel_->Cancel(&conn->phase_timer);
  wheel_->Cancel(&conn->life_timer);
  if (st.armed != 0) {
    // Withdraw any in-flight one-shot poll (no-op for epoll, whose close()
    // drops the registration). A completion that raced the cancel is
    // rejected by the io_gen bump in FreeConn below.
    io_->CancelConn(conn->fd,
                    io::MakeConnToken(handle, conn->io_gen.load(std::memory_order_relaxed)));
    st.armed = 0;
  }
  if (st.opened && handler != nullptr) {
    svc::ConnRef ref{&st, conn->fd, index_, shared_->sys};
    handler->OnClose(ref);
  }
  OpenListRemove(handle, conn);
  --open_count_;
  hot_.conn_open->store(open_count_, std::memory_order_relaxed);
  if (shared_->trace != nullptr) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kConnClose;
    event.core = static_cast<int16_t>(index_);
    event.src = static_cast<int16_t>(st.listener);
    event.qlen = st.rounds_done;
    shared_->trace->Record(index_, event);
  }
  if (rst) {
    RstClose(conn->fd);
  } else {
    shared_->sys->Close(index_, conn->fd);
  }
  if (timeout != DeadlineKind::kNone) {
    // A deadline expiry (or pool-pressure eviction) is not service: it
    // lands in its classified rt_timeouts_* bucket -- the `timed_out` term
    // of the conservation equation -- never in served.
    hot_.timeouts[static_cast<int>(timeout) - 1]->fetch_add(
        1, std::memory_order_relaxed);
  } else {
    // Served accounting happens at close, under the locality recorded when
    // the connection was popped -- held-open connections are in
    // rt_conn_open until this moment, which is what keeps `accepted ==
    // served + open + drops` exact at any instant.
    if (st.remote_served) {
      ++batch_served_remote_;
    } else {
      ++batch_served_local_;
    }
    if (shared_->draining.load(std::memory_order_relaxed)) {
      // A conversation that finished normally inside the drain window: the
      // graceful half of Stop(drain_deadline_ms)'s ledger.
      hot_.drained_gracefully->fetch_add(1, std::memory_order_relaxed);
    }
  }
  FreeConn(handle);
}

void Reactor::FreeConn(ConnHandle handle) {
  // Retire this block's reuse generation BEFORE the block can recycle: any
  // event token minted for the old occupant is now recognizably stale.
  shared_->pool->Get(handle)->io_gen.fetch_add(1, std::memory_order_relaxed);
  CoreId owner = shared_->pool->OwnerOf(handle);
  shared_->pool->Free(index_, handle);
  if (owner != index_) {
    hot_.conn_remote_frees->fetch_add(1, std::memory_order_relaxed);
  }
}

void Reactor::OpenListAdd(ConnHandle handle, PendingConn* conn) {
  conn->svc.open_prev = kNullConn;
  conn->svc.open_next = open_head_;
  if (open_head_ != kNullConn) {
    shared_->pool->Get(open_head_)->svc.open_prev = handle;
  }
  open_head_ = handle;
}

void Reactor::OpenListRemove(ConnHandle handle, PendingConn* conn) {
  uint32_t prev = conn->svc.open_prev;
  uint32_t next = conn->svc.open_next;
  if (prev != kNullConn) {
    shared_->pool->Get(prev)->svc.open_next = next;
  } else {
    open_head_ = next;
  }
  if (next != kNullConn) {
    shared_->pool->Get(next)->svc.open_prev = prev;
  }
  conn->svc.open_prev = kNullConn;
  conn->svc.open_next = kNullConn;
}

void Reactor::CloseAllOpen() {
  uint64_t aborted = 0;
  while (open_head_ != kNullConn) {
    ConnHandle handle = open_head_;
    PendingConn* conn = shared_->pool->Get(handle);
    svc::ConnState& st = conn->svc;
    svc::ConnHandler* handler = shared_->listeners[st.listener]->handler;
    if (st.opened && handler != nullptr) {
      svc::ConnRef ref{&st, conn->fd, index_, shared_->sys};
      handler->OnClose(ref);
    }
    wheel_->Cancel(&conn->phase_timer);
    wheel_->Cancel(&conn->life_timer);
    OpenListRemove(handle, conn);
    shared_->sys->Close(index_, conn->fd);
    FreeConn(handle);
    ++aborted;
  }
  if (aborted > 0) {
    hot_.aborted_at_stop->fetch_add(aborted, std::memory_order_relaxed);
  }
  open_count_ = 0;
  hot_.conn_open->store(0, std::memory_order_relaxed);
}

}  // namespace rt
}  // namespace affinity
