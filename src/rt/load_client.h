// Loopback load generator: closed-loop client threads that connect to the
// runtime and drive its workload. Under kAccept (the legacy mode) each
// connection reads the one-byte response until EOF and reconnects --
// connection-per-request, like the paper's ab/apachebench setup. Under the
// request/response workloads (echo/static/think) each connection carries
// `requests_per_conn` newline-terminated requests, reading back the
// "<len>\n<payload>" response per round and stamping a per-request latency
// into a per-thread histogram ledger -- the paper's persistent-connection
// Apache traffic.
//
// Robustness: every blocking call is bounded by connect_timeout_ms, and a
// refused or timed-out connect enters capped exponential backoff with
// jitter -- a restarting or overloaded server sees a decaying retry storm,
// not a synchronized hammer. Outcomes are conserved: every attempt is
// exactly one of completed, refused, timed out, port-busy, or error, so
// chaos tests can balance the client ledger against the server's.
//
// All socket I/O (connect/read/write) routes through a fault::SysIface
// keyed by the client THREAD index, so chaos plans can fault the client
// side of the conversation independently of the server.

#ifndef AFFINITY_SRC_RT_LOAD_CLIENT_H_
#define AFFINITY_SRC_RT_LOAD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fault/sys_iface.h"
#include "src/sim/stats.h"
#include "src/svc/conn_handler.h"

namespace affinity {
namespace rt {

// Misbehaving-client modes for the connection-lifecycle deadline subsystem:
// instead of driving the workload, each connection deliberately wedges at a
// chosen point and then waits for the server to reap it. Each mode pins a
// specific server-side deadline class:
//   kHandshake:  connect, send nothing          -> rt_timeouts_handshake
//   kMidRequest: send half a request line, stop -> rt_timeouts_read
//   kMidRead:    send a request, never read the response (tiny SO_RCVBUF so
//                the server's send stalls)      -> rt_timeouts_write
// A reaped connection counts into stalled_reaped(), a separate ledger term:
// the stall was the point, so the reap is success, not an error.
enum class StallMode : uint8_t {
  kNone,
  kHandshake,
  kMidRequest,
  kMidRead,
};

struct LoadClientConfig {
  uint16_t port = 0;
  int num_threads = 4;
  // Stop after this many total completed connections (0 = run until Stop()).
  uint64_t max_conns = 0;
  // Deterministic source ports: when non-empty, thread t cycles through the
  // slice {src_ports[i] : i % num_threads == t}, binding each connection's
  // source port explicitly. The source port is the flow-group key (Section
  // 3.1), so this produces a KNOWN flow-group mix -- build the list with
  // steer::SkewedSourcePorts. Each such connection is RST-closed
  // (SO_LINGER{1,0}) instead of orderly-closed so the 4-tuple never lingers
  // in TIME_WAIT and the port is immediately reusable.
  std::vector<uint16_t> src_ports;
  // Bound on every blocking socket call (connect, read); also how fast
  // Stop() is honored mid-connection.
  int connect_timeout_ms = 1000;
  // Capped exponential backoff after ECONNREFUSED/ETIMEDOUT: first window
  // backoff_base_ms, doubling to backoff_max_ms, with uniform jitter in
  // [window/2, window] so client threads desynchronize.
  int backoff_base_ms = 1;
  int backoff_max_ms = 100;
  uint64_t backoff_seed = 1;  // per-thread jitter streams derive from this

  // --- request/response traffic (must match the server's workload) ---

  // kAccept reproduces the legacy read-to-EOF cycle; anything else sends
  // request lines and reads framed responses.
  svc::WorkloadKind workload = svc::WorkloadKind::kAccept;
  // Requests per connection before the client closes. For an echo-N server
  // (HandlerParams::echo_rounds > 0) set this to N; the server closes after
  // the Nth response either way.
  int requests_per_conn = 1;
  // Request payload bytes before the terminating newline (echo/think).
  int payload_bytes = 64;
  // Client-side pause between rounds on one connection, modeling user think
  // time (0 = closed-loop as fast as responses return).
  int think_time_us = 0;
  // kStatic: request keys cycle obj0..obj<num_keys-1>.
  int num_keys = 64;
  // Non-empty: connect to this UNIX-domain socket path instead of TCP
  // (leading '@' = abstract namespace). src_ports are ignored.
  std::string unix_path;
  // Client-side fault seam (core = thread index); null = passthrough.
  fault::SysIface* sys = nullptr;
  // Misbehave instead of completing the workload (see StallMode). With
  // kMidRequest, the connection first completes requests_per_conn - 1 full
  // rounds so per-request deadline re-arming is exercised, then stalls the
  // final request halfway.
  StallMode stall = StallMode::kNone;
};

class LoadClient {
 public:
  explicit LoadClient(const LoadClientConfig& config);
  ~LoadClient();

  LoadClient(const LoadClient&) = delete;
  LoadClient& operator=(const LoadClient&) = delete;

  void Start();
  // Signals the client threads and joins them. Idempotent.
  void Stop();
  // Blocks until max_conns completions (requires max_conns > 0), then stops.
  void WaitForMaxConns();

  // Outcome ledger: attempted() == completed + refused + timeouts +
  // port_busy + errors + aborted_at_stop + stalled_reaped once the threads
  // are joined.
  uint64_t attempted() const { return attempted_.load(std::memory_order_relaxed); }
  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t refused() const { return refused_.load(std::memory_order_relaxed); }
  uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  uint64_t port_busy() const { return port_busy_.load(std::memory_order_relaxed); }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  // Conversations Stop() tore down mid-flight: the client walked away, the
  // server did nothing wrong. The client-side mirror of the server's
  // aborted_at_stop term.
  uint64_t aborted_at_stop() const { return aborted_.load(std::memory_order_relaxed); }
  // Stalled connections the server reaped (RST/EOF while we were wedged on
  // purpose): the client-side mirror of the server's rt_timeouts_* closes.
  // Always 0 with stall == kNone.
  uint64_t stalled_reaped() const { return stalled_reaped_.load(std::memory_order_relaxed); }
  uint64_t backoffs() const { return backoffs_.load(std::memory_order_relaxed); }
  // Completed request/response rounds (0 under kAccept). Live.
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

  // Per-thread latency ledgers merged on demand. Call AFTER Stop() (or
  // WaitForMaxConns): merging races thread-local Add()s otherwise.
  Histogram RequestLatencyNs() const;         // per completed request round
  Histogram ConnectLatencyNs() const;         // per successful connect
  Histogram RefusedConnectLatencyNs() const;  // time to receive ECONNREFUSED

 private:
  enum class ConnOutcome {
    kOk,
    kPortInUse,  // bind(src_port) hit EADDRINUSE: retry with the next port
    kRefused,    // connect ECONNREFUSED: nothing listening (yet)
    kTimedOut,       // connect or read exceeded connect_timeout_ms
    kAbortedAtStop,  // Stop() landed mid-conversation
    kStalledReaped,  // deliberate stall ended by the server's reap (success)
    kError,
  };

  // Thread-local latency ledger; histograms allocate at Start(), never in
  // steady state.
  struct ThreadLedger {
    Histogram request_ns;
    Histogram connect_ns;
    Histogram refused_ns;
    uint64_t key_cursor = 0;  // kStatic: rotates the requested object
  };

  void RunThread(int thread_index);
  // One connection's full lifecycle; `src_port` 0 lets the kernel pick an
  // ephemeral port. Increments attempted_ and the outcome counter.
  ConnOutcome OneConnection(int thread_index, uint16_t src_port, ThreadLedger* ledger);
  // The request/response rounds on a connected socket. Returns kOk when
  // `rounds` rounds completed.
  ConnOutcome RunRounds(int thread_index, int fd, ThreadLedger* ledger, int rounds);
  int ConnectSocket(int thread_index, uint16_t src_port, ThreadLedger* ledger,
                    ConnOutcome* outcome);
  // The deliberate-stall lifecycle on a connected socket (stall != kNone).
  ConnOutcome RunStalled(int thread_index, int fd, ThreadLedger* ledger);
  // Blocks (SO_RCVTIMEO-bounded reads) until the server reaps the
  // connection -- EOF or RST -> kStalledReaped -- or Stop() lands.
  ConnOutcome AwaitReap(int thread_index, int fd);
  // Same, but WITHOUT reading (kMidRead must keep the receive window
  // jammed): polls for the reap's POLLERR/POLLHUP instead.
  ConnOutcome AwaitReapNoRead(int fd);

  LoadClientConfig config_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<ThreadLedger>> ledgers_;
  std::atomic<uint64_t> attempted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> port_busy_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> stalled_reaped_{0};
  std::atomic<uint64_t> backoffs_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace rt
}  // namespace affinity

#endif  // AFFINITY_SRC_RT_LOAD_CLIENT_H_
