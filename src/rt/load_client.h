// Loopback load generator: closed-loop client threads that connect to the
// runtime's port, read the one-byte response until EOF, and immediately
// reconnect. Connection-per-request, like the paper's ab/apachebench setup.
//
// Robustness: every blocking call is bounded by connect_timeout_ms, and a
// refused or timed-out connect enters capped exponential backoff with
// jitter -- a restarting or overloaded server sees a decaying retry storm,
// not a synchronized hammer. Outcomes are conserved: every attempt is
// exactly one of completed, refused, timed out, port-busy, or error, so
// chaos tests can balance the client ledger against the server's.

#ifndef AFFINITY_SRC_RT_LOAD_CLIENT_H_
#define AFFINITY_SRC_RT_LOAD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace affinity {
namespace rt {

struct LoadClientConfig {
  uint16_t port = 0;
  int num_threads = 4;
  // Stop after this many total completed connections (0 = run until Stop()).
  uint64_t max_conns = 0;
  // Deterministic source ports: when non-empty, thread t cycles through the
  // slice {src_ports[i] : i % num_threads == t}, binding each connection's
  // source port explicitly. The source port is the flow-group key (Section
  // 3.1), so this produces a KNOWN flow-group mix -- build the list with
  // steer::SkewedSourcePorts. Each such connection is RST-closed
  // (SO_LINGER{1,0}) instead of orderly-closed so the 4-tuple never lingers
  // in TIME_WAIT and the port is immediately reusable.
  std::vector<uint16_t> src_ports;
  // Bound on every blocking socket call (connect, read); also how fast
  // Stop() is honored mid-connection.
  int connect_timeout_ms = 1000;
  // Capped exponential backoff after ECONNREFUSED/ETIMEDOUT: first window
  // backoff_base_ms, doubling to backoff_max_ms, with uniform jitter in
  // [window/2, window] so client threads desynchronize.
  int backoff_base_ms = 1;
  int backoff_max_ms = 100;
  uint64_t backoff_seed = 1;  // per-thread jitter streams derive from this
};

class LoadClient {
 public:
  explicit LoadClient(const LoadClientConfig& config);
  ~LoadClient();

  LoadClient(const LoadClient&) = delete;
  LoadClient& operator=(const LoadClient&) = delete;

  void Start();
  // Signals the client threads and joins them. Idempotent.
  void Stop();
  // Blocks until max_conns completions (requires max_conns > 0), then stops.
  void WaitForMaxConns();

  // Outcome ledger: attempted() == completed + refused + timeouts +
  // port_busy + errors once the threads are joined.
  uint64_t attempted() const { return attempted_.load(std::memory_order_relaxed); }
  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t refused() const { return refused_.load(std::memory_order_relaxed); }
  uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  uint64_t port_busy() const { return port_busy_.load(std::memory_order_relaxed); }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t backoffs() const { return backoffs_.load(std::memory_order_relaxed); }

 private:
  enum class ConnOutcome {
    kOk,
    kPortInUse,  // bind(src_port) hit EADDRINUSE: retry with the next port
    kRefused,    // connect ECONNREFUSED: nothing listening (yet)
    kTimedOut,   // connect or read exceeded connect_timeout_ms
    kError,
  };

  void RunThread(int thread_index);
  // One connect / read-to-EOF / close cycle; `src_port` 0 lets the kernel
  // pick an ephemeral port. Increments attempted_ and the outcome counter.
  ConnOutcome OneConnection(uint16_t src_port);

  LoadClientConfig config_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> attempted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> port_busy_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> backoffs_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace rt
}  // namespace affinity

#endif  // AFFINITY_SRC_RT_LOAD_CLIENT_H_
