#include "src/rt/runtime.h"

#include <unistd.h>

#include <algorithm>

#include "src/rt/listener.h"

namespace affinity {
namespace rt {

Runtime::Runtime(const RtConfig& config) : config_(config) {
  if (config_.num_threads < 1) {
    config_.num_threads = 1;
  }
  if (config_.accept_batch < 1) {
    config_.accept_batch = 1;
  }
  // Same split as ListenSocket: the backlog is divided evenly across the
  // per-core queues, and that share is the busy-tracking reference length.
  max_local_len_ = std::max(1, config_.backlog / config_.num_threads);
}

Runtime::~Runtime() { Stop(); }

bool Runtime::Start(std::string* error) {
  if (started_) {
    *error = "already started";
    return false;
  }

  bool stock = config_.mode == RtMode::kStock;
  port_ = config_.port;

  int num_sockets = stock ? 1 : config_.num_threads;
  for (int i = 0; i < num_sockets; ++i) {
    // The first bind may pick the port; later shards must reuse it.
    int fd = CreateListenSocket(&port_, config_.backlog, /*reuseport=*/!stock, error);
    if (fd < 0) {
      for (int other : listen_fds_) {
        close(other);
      }
      listen_fds_.clear();
      return false;
    }
    listen_fds_.push_back(fd);
  }

  shared_.mode = config_.mode;
  shared_.num_reactors = config_.num_threads;
  shared_.accept_batch = config_.accept_batch;
  shared_.pin_threads = config_.pin_threads;
  int num_queues = stock ? 1 : config_.num_threads;
  size_t queue_cap = stock ? static_cast<size_t>(std::max(1, config_.backlog))
                           : static_cast<size_t>(max_local_len_);
  for (int i = 0; i < num_queues; ++i) {
    shared_.queues.emplace_back(new AcceptQueue(queue_cap));
  }
  if (config_.mode == RtMode::kAffinity) {
    policy_.reset(new LockedBalancePolicy(config_.num_threads,
                                          static_cast<size_t>(max_local_len_), config_.tuning));
    shared_.policy = policy_.get();
  }

  for (int i = 0; i < config_.num_threads; ++i) {
    int fd = stock ? listen_fds_[0] : listen_fds_[static_cast<size_t>(i)];
    reactors_.emplace_back(new Reactor(i, fd, &shared_));
  }
  for (int i = 0; i < config_.num_threads; ++i) {
    Reactor* r = reactors_[static_cast<size_t>(i)].get();
    threads_.emplace_back([r] { r->Run(); });
  }
  started_ = true;
  return true;
}

void Runtime::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  shared_.stop.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  for (int fd : listen_fds_) {
    close(fd);
  }
  listen_fds_.clear();
  for (auto& queue : shared_.queues) {
    for (const PendingConn& conn : queue->DrainAll()) {
      close(conn.fd);
      ++drained_at_stop_;
    }
  }
  stopped_ = true;
}

RtTotals Runtime::Totals() const {
  RtTotals totals;
  for (const auto& reactor : reactors_) {
    const ReactorStats& s = reactor->stats();
    totals.accepted += s.accepted;
    totals.served_local += s.served_local;
    totals.served_remote += s.served_remote;
    totals.steals += s.steals;
    totals.overflow_drops += s.overflow_drops;
    totals.queue_wait_ns.Merge(s.queue_wait_ns);
  }
  totals.drained_at_stop = drained_at_stop_;
  if (policy_ != nullptr) {
    totals.transitions_to_busy = policy_->transitions_to_busy();
    totals.transitions_to_nonbusy = policy_->transitions_to_nonbusy();
  }
  return totals;
}

}  // namespace rt
}  // namespace affinity
