#include "src/rt/runtime.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "src/rt/listener.h"

namespace affinity {
namespace rt {

Runtime::Runtime(const RtConfig& config) : config_(config) {
  if (config_.num_threads < 1) {
    config_.num_threads = 1;
  }
  if (config_.num_threads > kMaxCores) {
    config_.num_threads = kMaxCores;  // pool handles encode the core id
  }
  if (config_.accept_batch < 1) {
    config_.accept_batch = 1;
  }
  // Same split as ListenSocket: the backlog is divided evenly across the
  // per-core queues, and that share is the busy-tracking reference length.
  max_local_len_ = std::max(1, config_.backlog / config_.num_threads);

  // Register everything up front: registration is the only non-thread-safe
  // registry operation, and the reactor threads don't exist yet.
  metrics_.reset(new obs::MetricsRegistry(config_.num_threads));
  ids_.accepted = metrics_->RegisterCounter("rt_accepted", "connections returned by accept()");
  ids_.served_local =
      metrics_->RegisterCounter("rt_served_local", "connections served from the core's own queue");
  ids_.served_remote =
      metrics_->RegisterCounter("rt_served_remote", "connections served from another core's queue");
  ids_.steals = metrics_->RegisterCounter("rt_steals", "affinity-mode connection steals");
  ids_.overflow_drops =
      metrics_->RegisterCounter("rt_overflow_drops", "connections dropped on a full local queue");
  ids_.epoll_wakeups = metrics_->RegisterCounter("rt_epoll_wakeups", "epoll_wait returns with work");
  ids_.to_busy =
      metrics_->RegisterCounter("rt_transitions_to_busy", "high-watermark busy-bit sets");
  ids_.to_nonbusy =
      metrics_->RegisterCounter("rt_transitions_to_nonbusy", "low-watermark busy-bit clears");
  ids_.conn_remote_frees = metrics_->RegisterCounter(
      "rt_conn_remote_frees", "PendingConn blocks freed by a core other than their owner");
  ids_.pool_exhausted = metrics_->RegisterCounter(
      "rt_pool_exhausted", "connections dropped because the conn pool had no free block");
  ids_.accept_eintr =
      metrics_->RegisterCounter("rt_accept_eintr", "accept4 EINTR skip-and-continue");
  ids_.accept_econnaborted = metrics_->RegisterCounter(
      "rt_accept_econnaborted", "accept4 ECONNABORTED: connection gone before accept");
  ids_.accept_eproto =
      metrics_->RegisterCounter("rt_accept_eproto", "accept4 EPROTO skip-and-continue");
  ids_.accept_emfile =
      metrics_->RegisterCounter("rt_accept_emfile", "accept4 EMFILE/ENFILE: out of fds");
  ids_.accept_backoff = metrics_->RegisterCounter(
      "rt_accept_backoff", "capped exponential accept backoff windows entered");
  ids_.admission_shed = metrics_->RegisterCounter(
      "rt_admission_shed", "connections accepted then shed (RST) by the admission policy");
  ids_.fault_injected =
      metrics_->RegisterCounter("rt_fault_injected", "faults injected by the chaos plan");
  ids_.failovers =
      metrics_->RegisterCounter("rt_failovers", "watchdog failovers won by this core");
  ids_.recoveries =
      metrics_->RegisterCounter("rt_recoveries", "reactors recovered after failover");
  ids_.failover_group_moves = metrics_->RegisterCounter(
      "rt_failover_group_moves", "flow groups mass-moved by failover/recovery");
  ids_.reactor_dead =
      metrics_->RegisterGauge("rt_reactor_dead", "1 = this reactor is marked dead");
  ids_.queue_len = metrics_->RegisterGauge("rt_queue_len", "accept-queue length at last update");
  ids_.busy = metrics_->RegisterGauge("rt_busy", "busy bit (1 = over high watermark)");
  ids_.queue_wait =
      metrics_->RegisterHistogram("rt_queue_wait_ns", "accept() -> service latency per connection");
  if (config_.steer && config_.mode == RtMode::kAffinity) {
    ids_.steer_owner_accepts = metrics_->RegisterCounter(
        "rt_steer_owner_accepts", "connections accepted on the shard owning their flow group");
    ids_.steer_cross_accepts = metrics_->RegisterCounter(
        "rt_steer_cross_accepts", "connections re-steered in user space to their owner's queue");
    ids_.migrations =
        metrics_->RegisterCounter("rt_migrations", "flow groups pulled by the long-term balancer");
    ids_.steer_cbpf =
        metrics_->RegisterGauge("rt_steer_cbpf", "1 = SO_ATTACH_REUSEPORT_CBPF program attached");
    ids_.groups_owned =
        metrics_->RegisterGauge("rt_steer_groups_owned", "steering-table flow groups per core");
  }
  if (config_.trace_capacity > 0) {
    trace_.reset(new obs::TraceRing(config_.num_threads, config_.trace_capacity));
  }
}

Runtime::~Runtime() { Stop(); }

bool Runtime::Start(std::string* error) {
  if (started_) {
    *error = "already started";
    return false;
  }
  // Reset per-run state (Stop() -> Start() reuse): metrics and the drained
  // counter are cumulative, everything else starts fresh.
  shared_.stop.store(false, std::memory_order_release);
  shared_.rr_cursor.store(0, std::memory_order_relaxed);
  reactors_.clear();
  shared_.queues.clear();
  shared_.listen_fds.clear();

  bool stock = config_.mode == RtMode::kStock;
  port_ = config_.port;

  int num_sockets = stock ? 1 : config_.num_threads;
  for (int i = 0; i < num_sockets; ++i) {
    // The first bind may pick the port; later shards must reuse it.
    int fd = CreateListenSocket(&port_, config_.backlog, /*reuseport=*/!stock, error);
    if (fd < 0) {
      for (int other : listen_fds_) {
        close(other);
      }
      listen_fds_.clear();
      return false;
    }
    listen_fds_.push_back(fd);
  }

  shared_.mode = config_.mode;
  shared_.num_reactors = config_.num_threads;
  shared_.accept_batch = config_.accept_batch;
  shared_.pin_threads = config_.pin_threads;
  shared_.metrics = metrics_.get();
  shared_.ids = ids_;
  shared_.trace = trace_.get();
  shared_.listen_fds = listen_fds_;
  shared_.overload = config_.overload;
  shared_.drop_budget_per_sec = config_.drop_budget_per_sec;

  // Syscall surface: passthrough unless the chaos plan has rules.
  shared_.sys = fault::DefaultSys();
  if (!config_.fault_plan.empty()) {
    injector_.reset(new fault::FaultInjector(config_.fault_plan, config_.num_threads));
    injector_->set_stop_flag(&shared_.stop);
    injector_->set_on_inject([this](fault::CallSite, int core) {
      metrics_->Add(ids_.fault_injected, core);
    });
    shared_.sys = injector_.get();
  } else {
    injector_.reset();
  }
  // Failure domains + watchdog.
  if (config_.watchdog_timeout_ms > 0) {
    domains_.reset(new fault::FailureDomains(config_.num_threads));
    shared_.domains = domains_.get();
    shared_.watchdog_timeout_ms = config_.watchdog_timeout_ms;
  } else {
    domains_.reset();
    shared_.domains = nullptr;
    shared_.watchdog_timeout_ms = 0;
  }
  for (int i = 0; i < config_.num_threads; ++i) {
    metrics_->GaugeSet(ids_.reactor_dead, i, 0);
  }

  int num_queues = stock ? 1 : config_.num_threads;
  size_t queue_cap = stock ? static_cast<size_t>(std::max(1, config_.backlog))
                           : static_cast<size_t>(max_local_len_);
  for (int i = 0; i < num_queues; ++i) {
    shared_.queues.emplace_back(new AcceptRing(queue_cap));
  }
  // Each core's arena covers every ring filling up (any core's accepts can
  // land on any ring under steering or stock mode) plus one in-flight
  // batch; beyond that the rings are full and the accept is a drop anyway.
  // config.pool_blocks_per_core overrides for pool-exhaustion tests.
  uint32_t blocks_per_core =
      config_.pool_blocks_per_core > 0
          ? config_.pool_blocks_per_core
          : static_cast<uint32_t>(static_cast<size_t>(num_queues) * queue_cap +
                                  static_cast<size_t>(config_.accept_batch) + 1);
  pool_.reset(new ConnPool(config_.num_threads, blocks_per_core));
  shared_.pool = pool_.get();
  if (config_.mode == RtMode::kAffinity) {
    policy_.reset(new LockedBalancePolicy(config_.num_threads,
                                          static_cast<size_t>(max_local_len_), config_.tuning));
    shared_.policy = policy_.get();
  }
  if (config_.steer && config_.mode == RtMode::kAffinity) {
    steer::FlowDirectorConfig dcfg;
    dcfg.num_groups = config_.num_flow_groups;
    dcfg.num_cores = config_.num_threads;
    dcfg.sys = shared_.sys;
    director_.reset(new steer::FlowDirector(dcfg));
    if (!config_.steer_force_fallback) {
      // Attaching to any one socket of the reuseport group programs the
      // whole group (the kernel stores the program on the group). Failure
      // is survivable: the director stays in fallback mode and the accept
      // path re-steers in user space.
      std::string attach_error;
      if (!director_->Attach(listen_fds_[0], &attach_error)) {
        std::fprintf(stderr,
                     "rt: SO_ATTACH_REUSEPORT_CBPF unavailable (%s); "
                     "steering falls back to user-space re-steer\n",
                     attach_error.c_str());
      }
    }
    shared_.director = director_.get();
    shared_.migrate_interval_ms = config_.migrate_interval_ms;
    metrics_->GaugeSet(ids_.steer_cbpf, 0,
                       director_->kernel_steering() == steer::KernelSteering::kAttached ? 1 : 0);
    for (int i = 0; i < config_.num_threads; ++i) {
      metrics_->GaugeSet(ids_.groups_owned, i,
                         static_cast<uint64_t>(director_->table().OwnedBy(i)));
    }
  }

  for (int i = 0; i < config_.num_threads; ++i) {
    int fd = stock ? listen_fds_[0] : listen_fds_[static_cast<size_t>(i)];
    reactors_.emplace_back(new Reactor(i, fd, &shared_));
  }
  for (int i = 0; i < config_.num_threads; ++i) {
    Reactor* r = reactors_[static_cast<size_t>(i)].get();
    threads_.emplace_back([r] { r->Run(); });
  }
  started_ = true;
  return true;
}

void Runtime::Stop() {
  if (!started_) {
    return;
  }
  shared_.stop.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  for (int fd : listen_fds_) {
    close(fd);
  }
  listen_fds_.clear();
  shared_.listen_fds.clear();
  uint64_t drained = 0;
  for (auto& queue : shared_.queues) {
    // Quiescent by now (reactors joined): drain the ring and hand each
    // block back to its owner core's freelist.
    for (ConnHandle handle : queue->DrainAll()) {
      close(pool_->Get(handle)->fd);
      pool_->Free(pool_->OwnerOf(handle), handle);
      ++drained;
    }
  }
  // Accumulate (not overwrite): across Stop()/Start() cycles the metrics
  // registry keeps counting, so conservation must too.
  drained_at_stop_.fetch_add(drained, std::memory_order_acq_rel);
  started_ = false;
}

ReactorStats Runtime::reactor_stats(int i) const {
  ReactorStats s;
  s.accepted = metrics_->Value(ids_.accepted, i);
  s.served_local = metrics_->Value(ids_.served_local, i);
  s.served_remote = metrics_->Value(ids_.served_remote, i);
  s.steals = metrics_->Value(ids_.steals, i);
  s.overflow_drops = metrics_->Value(ids_.overflow_drops, i);
  s.epoll_wakeups = metrics_->Value(ids_.epoll_wakeups, i);
  s.queue_wait_ns = metrics_->HistogramSnapshot(ids_.queue_wait, i);
  return s;
}

RtTotals Runtime::Totals() const {
  RtTotals totals;
  totals.accepted = metrics_->Total(ids_.accepted);
  totals.served_local = metrics_->Total(ids_.served_local);
  totals.served_remote = metrics_->Total(ids_.served_remote);
  totals.steals = metrics_->Total(ids_.steals);
  totals.overflow_drops = metrics_->Total(ids_.overflow_drops);
  totals.transitions_to_busy = metrics_->Total(ids_.to_busy);
  totals.transitions_to_nonbusy = metrics_->Total(ids_.to_nonbusy);
  totals.conn_remote_frees = metrics_->Total(ids_.conn_remote_frees);
  totals.pool_exhausted = metrics_->Total(ids_.pool_exhausted);
  totals.accept_eintr = metrics_->Total(ids_.accept_eintr);
  totals.accept_econnaborted = metrics_->Total(ids_.accept_econnaborted);
  totals.accept_eproto = metrics_->Total(ids_.accept_eproto);
  totals.accept_emfile = metrics_->Total(ids_.accept_emfile);
  totals.accept_backoff = metrics_->Total(ids_.accept_backoff);
  totals.admission_shed = metrics_->Total(ids_.admission_shed);
  totals.fault_injected = metrics_->Total(ids_.fault_injected);
  totals.failovers = metrics_->Total(ids_.failovers);
  totals.recoveries = metrics_->Total(ids_.recoveries);
  totals.failover_group_moves = metrics_->Total(ids_.failover_group_moves);
  if (pool_ != nullptr) {
    totals.pool = pool_->StatsSnapshot();
  }
  if (director_ != nullptr) {
    totals.steer_owner_accepts = metrics_->Total(ids_.steer_owner_accepts);
    totals.steer_cross_accepts = metrics_->Total(ids_.steer_cross_accepts);
    totals.migrations = metrics_->Total(ids_.migrations);
  }
  totals.queue_wait_ns = metrics_->HistogramMerged(ids_.queue_wait);
  totals.drained_at_stop = drained_at_stop_.load(std::memory_order_acquire);
  return totals;
}

}  // namespace rt
}  // namespace affinity
