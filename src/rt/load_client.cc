#include "src/rt/load_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace affinity {
namespace rt {

LoadClient::LoadClient(const LoadClientConfig& config) : config_(config) {
  if (config_.num_threads < 1) {
    config_.num_threads = 1;
  }
}

LoadClient::~LoadClient() { Stop(); }

void LoadClient::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (int i = 0; i < config_.num_threads; ++i) {
    threads_.emplace_back([this, i] { RunThread(i); });
  }
}

void LoadClient::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  started_ = false;
}

void LoadClient::WaitForMaxConns() {
  while (config_.max_conns > 0 && !stop_.load(std::memory_order_acquire) &&
         completed_.load(std::memory_order_relaxed) < config_.max_conns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop();
}

void LoadClient::RunThread(int thread_index) {
  // This thread's round-robin slice of the deterministic source ports.
  // Disjoint slices mean two threads never race to bind the same port.
  std::vector<uint16_t> ports;
  for (size_t i = static_cast<size_t>(thread_index); i < config_.src_ports.size();
       i += static_cast<size_t>(config_.num_threads)) {
    ports.push_back(config_.src_ports[i]);
  }
  size_t cursor = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    if (config_.max_conns > 0 &&
        completed_.load(std::memory_order_relaxed) >= config_.max_conns) {
      return;
    }
    uint16_t src_port = ports.empty() ? 0 : ports[cursor++ % ports.size()];
    ConnOutcome outcome = OneConnection(src_port);
    // A lingering 4-tuple (e.g. the server closed first and our RST-close
    // raced it) makes this exact port transiently unbindable; the skew set
    // has several ports per flow group, so move on to the next one instead
    // of failing the run. One full lap of the slice without a bindable
    // port is a real error.
    size_t lap = 0;
    while (outcome == ConnOutcome::kPortInUse && !ports.empty() && ++lap < ports.size() &&
           !stop_.load(std::memory_order_acquire)) {
      src_port = ports[cursor++ % ports.size()];
      outcome = OneConnection(src_port);
    }
    if (outcome == ConnOutcome::kOk) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++errors_;
      // Back off briefly so a wedged server does not spin us at 100% CPU.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

LoadClient::ConnOutcome LoadClient::OneConnection(uint16_t src_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ConnOutcome::kError;
  }
  // Bound every blocking call so Stop() is honored within ~1s even if the
  // server stops serving while we are connected.
  timeval tv{1, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  if (src_port != 0) {
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in src;
    memset(&src, 0, sizeof(src));
    src.sin_family = AF_INET;
    src.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    src.sin_port = htons(src_port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&src), sizeof(src)) < 0) {
      int bind_errno = errno;
      close(fd);
      return bind_errno == EADDRINUSE ? ConnOutcome::kPortInUse : ConnOutcome::kError;
    }
  }

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    // A connect from a just-reused 4-tuple can also bounce off TIME_WAIT.
    int connect_errno = errno;
    close(fd);
    return src_port != 0 && connect_errno == EADDRNOTAVAIL ? ConnOutcome::kPortInUse
                                                           : ConnOutcome::kError;
  }

  // Read the response until orderly EOF.
  bool got_byte = false;
  char buf[16];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      got_byte = true;
      continue;
    }
    if (src_port != 0) {
      // RST-close: a FIN would leave this exact 4-tuple in TIME_WAIT and the
      // next cycle's bind+connect to the same port would fail, but the port
      // IS the flow-group key, so we cannot substitute another one.
      linger lg{1, 0};
      setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    close(fd);
    return n == 0 && got_byte ? ConnOutcome::kOk : ConnOutcome::kError;
  }
}

}  // namespace rt
}  // namespace affinity
