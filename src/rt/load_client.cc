#include "src/rt/load_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

namespace affinity {
namespace rt {

namespace {

// xorshift64*: cheap, per-thread jitter stream. Not for statistics -- only
// for desynchronizing backoff windows across client threads.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dull;
}

}  // namespace

LoadClient::LoadClient(const LoadClientConfig& config) : config_(config) {
  if (config_.num_threads < 1) {
    config_.num_threads = 1;
  }
  if (config_.connect_timeout_ms < 1) {
    config_.connect_timeout_ms = 1;
  }
  if (config_.backoff_base_ms < 1) {
    config_.backoff_base_ms = 1;
  }
  if (config_.backoff_max_ms < config_.backoff_base_ms) {
    config_.backoff_max_ms = config_.backoff_base_ms;
  }
}

LoadClient::~LoadClient() { Stop(); }

void LoadClient::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (int i = 0; i < config_.num_threads; ++i) {
    threads_.emplace_back([this, i] { RunThread(i); });
  }
}

void LoadClient::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  started_ = false;
}

void LoadClient::WaitForMaxConns() {
  while (config_.max_conns > 0 && !stop_.load(std::memory_order_acquire) &&
         completed_.load(std::memory_order_relaxed) < config_.max_conns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop();
}

void LoadClient::RunThread(int thread_index) {
  // This thread's round-robin slice of the deterministic source ports.
  // Disjoint slices mean two threads never race to bind the same port.
  std::vector<uint16_t> ports;
  for (size_t i = static_cast<size_t>(thread_index); i < config_.src_ports.size();
       i += static_cast<size_t>(config_.num_threads)) {
    ports.push_back(config_.src_ports[i]);
  }
  size_t cursor = 0;
  uint64_t rng = config_.backoff_seed + static_cast<uint64_t>(thread_index) * 0x9e3779b9ull + 1;
  int backoff_ms = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    if (config_.max_conns > 0 &&
        completed_.load(std::memory_order_relaxed) >= config_.max_conns) {
      return;
    }
    uint16_t src_port = ports.empty() ? 0 : ports[cursor++ % ports.size()];
    ConnOutcome outcome = OneConnection(src_port);
    // A lingering 4-tuple (e.g. the server closed first and our RST-close
    // raced it) makes this exact port transiently unbindable; the skew set
    // has several ports per flow group, so move on to the next one instead
    // of failing the run. One full lap of the slice without a bindable
    // port is a real error.
    size_t lap = 0;
    while (outcome == ConnOutcome::kPortInUse && !ports.empty() && ++lap < ports.size() &&
           !stop_.load(std::memory_order_acquire)) {
      src_port = ports[cursor++ % ports.size()];
      outcome = OneConnection(src_port);
    }
    if (outcome == ConnOutcome::kOk) {
      backoff_ms = 0;
      continue;
    }
    if (outcome == ConnOutcome::kRefused || outcome == ConnOutcome::kTimedOut) {
      // Capped exponential backoff with jitter: double the window up to the
      // cap, sleep a uniform draw from [window/2, window] so the client
      // threads spread out instead of re-hammering in lockstep.
      backoff_ms = backoff_ms == 0 ? config_.backoff_base_ms
                                   : std::min(backoff_ms * 2, config_.backoff_max_ms);
      int low = backoff_ms / 2 < 1 ? 1 : backoff_ms / 2;
      int jittered =
          low + static_cast<int>(NextRand(&rng) % static_cast<uint64_t>(backoff_ms - low + 1));
      backoffs_.fetch_add(1, std::memory_order_relaxed);
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(jittered);
      while (std::chrono::steady_clock::now() < deadline &&
             !stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    // kError (or an exhausted port-busy lap): brief fixed pause so a wedged
    // server does not spin us at 100% CPU.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

LoadClient::ConnOutcome LoadClient::OneConnection(uint16_t src_port) {
  attempted_.fetch_add(1, std::memory_order_relaxed);
  auto fail = [this](ConnOutcome outcome) {
    switch (outcome) {
      case ConnOutcome::kPortInUse:
        port_busy_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kRefused:
        refused_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kTimedOut:
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kError:
        errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kOk:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return outcome;
  };

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return fail(ConnOutcome::kError);
  }
  // Bound every blocking call so Stop() is honored within the timeout even
  // if the server stops serving while we are connected. SO_SNDTIMEO also
  // bounds the blocking connect itself.
  timeval tv;
  tv.tv_sec = config_.connect_timeout_ms / 1000;
  tv.tv_usec = (config_.connect_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  if (src_port != 0) {
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in src;
    memset(&src, 0, sizeof(src));
    src.sin_family = AF_INET;
    src.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    src.sin_port = htons(src_port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&src), sizeof(src)) < 0) {
      int bind_errno = errno;
      close(fd);
      return fail(bind_errno == EADDRINUSE ? ConnOutcome::kPortInUse : ConnOutcome::kError);
    }
  }

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int connect_errno = errno;
    close(fd);
    // A connect from a just-reused 4-tuple can also bounce off TIME_WAIT.
    if (src_port != 0 && connect_errno == EADDRNOTAVAIL) {
      return fail(ConnOutcome::kPortInUse);
    }
    if (connect_errno == ECONNREFUSED) {
      return fail(ConnOutcome::kRefused);
    }
    // A blocking connect bounded by SO_SNDTIMEO reports expiry as
    // EINPROGRESS/EWOULDBLOCK; ETIMEDOUT is the kernel's own handshake
    // timeout.
    if (connect_errno == ETIMEDOUT || connect_errno == EINPROGRESS ||
        connect_errno == EWOULDBLOCK || connect_errno == EAGAIN) {
      return fail(ConnOutcome::kTimedOut);
    }
    return fail(ConnOutcome::kError);
  }

  // Read the response until orderly EOF.
  bool got_byte = false;
  char buf[16];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      got_byte = true;
      continue;
    }
    bool timed_out = n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN);
    if (src_port != 0) {
      // RST-close: a FIN would leave this exact 4-tuple in TIME_WAIT and the
      // next cycle's bind+connect to the same port would fail, but the port
      // IS the flow-group key, so we cannot substitute another one.
      linger lg{1, 0};
      setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    close(fd);
    if (n == 0 && got_byte) {
      return fail(ConnOutcome::kOk);
    }
    return fail(timed_out ? ConnOutcome::kTimedOut : ConnOutcome::kError);
  }
}

}  // namespace rt
}  // namespace affinity
