#include "src/rt/load_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

#include "src/svc/conn_state.h"

namespace affinity {
namespace rt {

namespace {

// xorshift64*: cheap, per-thread jitter stream. Not for statistics -- only
// for desynchronizing backoff windows across client threads.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dull;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Scratch sizing: the largest request line the server accepts, plus header
// room. Stack arrays, so the steady-state request loop never allocates.
constexpr int kMaxPayload = static_cast<int>(svc::kReqBufBytes) - 8;

}  // namespace

LoadClient::LoadClient(const LoadClientConfig& config) : config_(config) {
  if (config_.num_threads < 1) {
    config_.num_threads = 1;
  }
  if (config_.connect_timeout_ms < 1) {
    config_.connect_timeout_ms = 1;
  }
  if (config_.backoff_base_ms < 1) {
    config_.backoff_base_ms = 1;
  }
  if (config_.backoff_max_ms < config_.backoff_base_ms) {
    config_.backoff_max_ms = config_.backoff_base_ms;
  }
  if (config_.requests_per_conn < 1) {
    config_.requests_per_conn = 1;
  }
  config_.payload_bytes = std::max(1, std::min(config_.payload_bytes, kMaxPayload));
  if (config_.num_keys < 1) {
    config_.num_keys = 1;
  }
  if (config_.sys == nullptr) {
    config_.sys = fault::DefaultSys();
  }
}

LoadClient::~LoadClient() { Stop(); }

void LoadClient::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Ledgers exist before any thread runs and survive until the next Start:
  // the reader merges them after Stop() without locking.
  ledgers_.clear();
  for (int i = 0; i < config_.num_threads; ++i) {
    ledgers_.emplace_back(new ThreadLedger);
  }
  for (int i = 0; i < config_.num_threads; ++i) {
    threads_.emplace_back([this, i] { RunThread(i); });
  }
}

void LoadClient::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  started_ = false;
}

void LoadClient::WaitForMaxConns() {
  while (config_.max_conns > 0 && !stop_.load(std::memory_order_acquire) &&
         completed_.load(std::memory_order_relaxed) < config_.max_conns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop();
}

Histogram LoadClient::RequestLatencyNs() const {
  Histogram merged;
  for (const auto& ledger : ledgers_) {
    merged.Merge(ledger->request_ns);
  }
  return merged;
}

Histogram LoadClient::ConnectLatencyNs() const {
  Histogram merged;
  for (const auto& ledger : ledgers_) {
    merged.Merge(ledger->connect_ns);
  }
  return merged;
}

Histogram LoadClient::RefusedConnectLatencyNs() const {
  Histogram merged;
  for (const auto& ledger : ledgers_) {
    merged.Merge(ledger->refused_ns);
  }
  return merged;
}

void LoadClient::RunThread(int thread_index) {
  // This thread's round-robin slice of the deterministic source ports.
  // Disjoint slices mean two threads never race to bind the same port.
  std::vector<uint16_t> ports;
  for (size_t i = static_cast<size_t>(thread_index); i < config_.src_ports.size();
       i += static_cast<size_t>(config_.num_threads)) {
    ports.push_back(config_.src_ports[i]);
  }
  size_t cursor = 0;
  uint64_t rng = config_.backoff_seed + static_cast<uint64_t>(thread_index) * 0x9e3779b9ull + 1;
  int backoff_ms = 0;
  ThreadLedger* ledger = ledgers_[static_cast<size_t>(thread_index)].get();

  while (!stop_.load(std::memory_order_acquire)) {
    if (config_.max_conns > 0 &&
        completed_.load(std::memory_order_relaxed) >= config_.max_conns) {
      return;
    }
    uint16_t src_port = ports.empty() ? 0 : ports[cursor++ % ports.size()];
    ConnOutcome outcome = OneConnection(thread_index, src_port, ledger);
    // A lingering 4-tuple (e.g. the server closed first and our RST-close
    // raced it) makes this exact port transiently unbindable; the skew set
    // has several ports per flow group, so move on to the next one instead
    // of failing the run. One full lap of the slice without a bindable
    // port is a real error.
    size_t lap = 0;
    while (outcome == ConnOutcome::kPortInUse && !ports.empty() && ++lap < ports.size() &&
           !stop_.load(std::memory_order_acquire)) {
      src_port = ports[cursor++ % ports.size()];
      outcome = OneConnection(thread_index, src_port, ledger);
    }
    if (outcome == ConnOutcome::kOk || outcome == ConnOutcome::kStalledReaped) {
      // A reaped stall is the mode working as intended: reconnect and
      // stall again (the storm), no backoff.
      backoff_ms = 0;
      continue;
    }
    if (outcome == ConnOutcome::kRefused || outcome == ConnOutcome::kTimedOut) {
      // Capped exponential backoff with jitter: double the window up to the
      // cap, sleep a uniform draw from [window/2, window] so the client
      // threads spread out instead of re-hammering in lockstep.
      backoff_ms = backoff_ms == 0 ? config_.backoff_base_ms
                                   : std::min(backoff_ms * 2, config_.backoff_max_ms);
      int low = backoff_ms / 2 < 1 ? 1 : backoff_ms / 2;
      int jittered =
          low + static_cast<int>(NextRand(&rng) % static_cast<uint64_t>(backoff_ms - low + 1));
      backoffs_.fetch_add(1, std::memory_order_relaxed);
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(jittered);
      while (std::chrono::steady_clock::now() < deadline &&
             !stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    // kError (or an exhausted port-busy lap): brief fixed pause so a wedged
    // server does not spin us at 100% CPU.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int LoadClient::ConnectSocket(int thread_index, uint16_t src_port, ThreadLedger* ledger,
                              ConnOutcome* outcome) {
  const bool is_unix = !config_.unix_path.empty();
  int fd = socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *outcome = ConnOutcome::kError;
    return -1;
  }
  // Bound every blocking call so Stop() is honored within the timeout even
  // if the server stops serving while we are connected. SO_SNDTIMEO also
  // bounds the blocking connect itself.
  timeval tv;
  tv.tv_sec = config_.connect_timeout_ms / 1000;
  tv.tv_usec = (config_.connect_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (config_.stall == StallMode::kMidRead) {
    // Shrink the receive window BEFORE connect (the window is negotiated at
    // handshake) so a non-reading client jams the server's send after a few
    // KB instead of after the kernel's default multi-megabyte buffers.
    int rcvbuf = 1024;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  if (!is_unix) {
    // Request lines are small; Nagle would batch them behind the previous
    // round's ACK and poison every latency sample with delayed-ACK waits.
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  if (!is_unix && src_port != 0) {
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in src;
    memset(&src, 0, sizeof(src));
    src.sin_family = AF_INET;
    src.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    src.sin_port = htons(src_port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&src), sizeof(src)) < 0) {
      int bind_errno = errno;
      close(fd);
      *outcome = bind_errno == EADDRINUSE ? ConnOutcome::kPortInUse : ConnOutcome::kError;
      return -1;
    }
  }

  sockaddr_storage addr_storage;
  memset(&addr_storage, 0, sizeof(addr_storage));
  socklen_t addr_len;
  if (is_unix) {
    auto* addr = reinterpret_cast<sockaddr_un*>(&addr_storage);
    addr->sun_family = AF_UNIX;
    const std::string& path = config_.unix_path;
    if (path.size() > sizeof(addr->sun_path) - 1) {
      close(fd);
      *outcome = ConnOutcome::kError;
      return -1;
    }
    if (path[0] == '@') {
      memcpy(addr->sun_path + 1, path.data() + 1, path.size() - 1);
      addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size());
    } else {
      memcpy(addr->sun_path, path.data(), path.size());
      addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
    }
  } else {
    auto* addr = reinterpret_cast<sockaddr_in*>(&addr_storage);
    addr->sin_family = AF_INET;
    addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr->sin_port = htons(config_.port);
    addr_len = sizeof(sockaddr_in);
  }

  uint64_t t0 = NowNs();
  if (config_.sys->Connect(thread_index, fd, reinterpret_cast<sockaddr*>(&addr_storage),
                           addr_len) < 0) {
    int connect_errno = errno;
    close(fd);
    // A connect from a just-reused 4-tuple can also bounce off TIME_WAIT.
    if (!is_unix && src_port != 0 && connect_errno == EADDRNOTAVAIL) {
      *outcome = ConnOutcome::kPortInUse;
      return -1;
    }
    if (connect_errno == ECONNREFUSED) {
      // The refusal's own latency: how fast an overloaded/absent server
      // turns the client around (the Section 3.3 fail-fast property).
      ledger->refused_ns.Add(NowNs() - t0);
      *outcome = ConnOutcome::kRefused;
      return -1;
    }
    // A blocking connect bounded by SO_SNDTIMEO reports expiry as
    // EINPROGRESS/EWOULDBLOCK; ETIMEDOUT is the kernel's own handshake
    // timeout.
    if (connect_errno == ETIMEDOUT || connect_errno == EINPROGRESS ||
        connect_errno == EWOULDBLOCK || connect_errno == EAGAIN) {
      *outcome = ConnOutcome::kTimedOut;
      return -1;
    }
    *outcome = ConnOutcome::kError;
    return -1;
  }
  ledger->connect_ns.Add(NowNs() - t0);
  *outcome = ConnOutcome::kOk;
  return fd;
}

LoadClient::ConnOutcome LoadClient::RunRounds(int thread_index, int fd, ThreadLedger* ledger,
                                              int rounds) {
  char req[svc::kReqBufBytes];
  char resp[4096];
  fault::SysIface* sys = config_.sys;

  for (int round = 0; round < rounds; ++round) {
    if (stop_.load(std::memory_order_acquire)) {
      return ConnOutcome::kAbortedAtStop;
    }
    // Build the request line in place (no allocation): a fixed 'x' payload
    // for echo/think, a rotating "obj<k>" key for static content.
    int req_len;
    if (config_.workload == svc::WorkloadKind::kStatic) {
      uint64_t key = ledger->key_cursor++ % static_cast<uint64_t>(config_.num_keys);
      req_len = std::snprintf(req, sizeof(req), "obj%llu\n",
                              static_cast<unsigned long long>(key));
    } else {
      memset(req, 'x', static_cast<size_t>(config_.payload_bytes));
      req[config_.payload_bytes] = '\n';
      req_len = config_.payload_bytes + 1;
    }

    uint64_t t0 = NowNs();
    // Write the full line; the socket is blocking with SO_SNDTIMEO, so a
    // short or EAGAIN write means the timeout expired.
    int off = 0;
    while (off < req_len) {
      ssize_t n = sys->Write(thread_index, fd, req + off, static_cast<size_t>(req_len - off));
      if (n > 0) {
        off += static_cast<int>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN) ? ConnOutcome::kTimedOut
                                                                : ConnOutcome::kError;
    }

    // Read the framed response: a "<len>\n" decimal header, then len
    // payload bytes. Header bytes accumulate in resp; payload bytes are
    // counted and discarded (the ledger wants latency, not contents).
    uint32_t have = 0;
    uint32_t header_end = 0;  // index one past the header's newline; 0 = not found
    uint64_t payload_len = 0;
    uint64_t payload_got = 0;
    for (;;) {
      if (header_end == 0) {
        ssize_t n = sys->Read(thread_index, fd, resp + have, sizeof(resp) - have);
        if (n == 0) {
          return ConnOutcome::kError;  // EOF mid-response
        }
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          return errno == EWOULDBLOCK || errno == EAGAIN ? ConnOutcome::kTimedOut
                                                         : ConnOutcome::kError;
        }
        have += static_cast<uint32_t>(n);
        for (uint32_t i = 0; i < have; ++i) {
          if (resp[i] == '\n') {
            header_end = i + 1;
            break;
          }
        }
        if (header_end == 0) {
          if (have >= sizeof(resp)) {
            return ConnOutcome::kError;  // unframed garbage
          }
          continue;
        }
        payload_len = 0;
        for (uint32_t i = 0; i + 1 < header_end; ++i) {
          if (resp[i] < '0' || resp[i] > '9') {
            return ConnOutcome::kError;
          }
          payload_len = payload_len * 10 + static_cast<uint64_t>(resp[i] - '0');
        }
        payload_got = have - header_end;
      }
      if (payload_got >= payload_len) {
        break;
      }
      uint64_t want = payload_len - payload_got;
      size_t chunk = want < sizeof(resp) ? static_cast<size_t>(want) : sizeof(resp);
      ssize_t n = sys->Read(thread_index, fd, resp, chunk);
      if (n == 0) {
        return ConnOutcome::kError;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return errno == EWOULDBLOCK || errno == EAGAIN ? ConnOutcome::kTimedOut
                                                       : ConnOutcome::kError;
      }
      payload_got += static_cast<uint64_t>(n);
    }

    ledger->request_ns.Add(NowNs() - t0);
    requests_.fetch_add(1, std::memory_order_relaxed);

    if (config_.think_time_us > 0 && round + 1 < rounds) {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.think_time_us));
    }
  }
  return ConnOutcome::kOk;
}

LoadClient::ConnOutcome LoadClient::AwaitReap(int thread_index, int fd) {
  char buf[256];
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) {
      return ConnOutcome::kAbortedAtStop;
    }
    ssize_t n = config_.sys->Read(thread_index, fd, buf, sizeof(buf));
    if (n == 0) {
      return ConnOutcome::kStalledReaped;  // FIN: the server gave up on us
    }
    if (n < 0) {
      if (errno == ECONNRESET) {
        return ConnOutcome::kStalledReaped;  // RST: the reaper's close
      }
      if (errno == EINTR || errno == EWOULDBLOCK || errno == EAGAIN) {
        continue;  // SO_RCVTIMEO tick; keep stalling until reaped or stopped
      }
      return ConnOutcome::kError;
    }
    // The server sent something (a response tail); drain and keep waiting.
  }
}

LoadClient::ConnOutcome LoadClient::AwaitReapNoRead(int fd) {
  // The receive window must STAY jammed, so no reads: watch for the reap's
  // error/hangup edge instead. A timeout RST surfaces as POLLERR; POLLRDHUP
  // (where available) catches an orderly FIN too.
  pollfd p;
  p.fd = fd;
#ifdef POLLRDHUP
  p.events = POLLRDHUP;
#else
  p.events = 0;
#endif
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) {
      return ConnOutcome::kAbortedAtStop;
    }
    p.revents = 0;
    int r = poll(&p, 1, /*timeout_ms=*/10);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ConnOutcome::kError;
    }
    if (r > 0 && (p.revents & (POLLERR | POLLHUP | p.events)) != 0) {
      return ConnOutcome::kStalledReaped;
    }
  }
}

LoadClient::ConnOutcome LoadClient::RunStalled(int thread_index, int fd, ThreadLedger* ledger) {
  switch (config_.stall) {
    case StallMode::kHandshake:
      // Connected, never sends a byte: the server's accept-to-first-byte
      // deadline is the only thing that can end this.
      return AwaitReap(thread_index, fd);
    case StallMode::kMidRequest: {
      // Behave for all but the last round (exercising per-request deadline
      // re-arming), then wedge the final request halfway through the line:
      // the server has bytes staged but no newline, pinning its read
      // deadline.
      if (config_.requests_per_conn > 1) {
        ConnOutcome warmup =
            RunRounds(thread_index, fd, ledger, config_.requests_per_conn - 1);
        if (warmup != ConnOutcome::kOk) {
          return warmup;
        }
      }
      char req[svc::kReqBufBytes];
      int half = std::max(1, config_.payload_bytes / 2);
      memset(req, 'x', static_cast<size_t>(half));
      int off = 0;
      while (off < half) {
        ssize_t n =
            config_.sys->Write(thread_index, fd, req + off, static_cast<size_t>(half - off));
        if (n > 0) {
          off += static_cast<int>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) {
          continue;
        }
        return n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN) ? ConnOutcome::kTimedOut
                                                                  : ConnOutcome::kError;
      }
      return AwaitReap(thread_index, fd);
    }
    case StallMode::kMidRead: {
      // Send one full request, then never read the response. With the tiny
      // SO_RCVBUF negotiated at connect, a response bigger than a few KB
      // jams the server's send -- its write deadline is what fires. (Pair
      // with a stream/static workload whose response overflows the window;
      // a response that fits is flushed whole and the idle deadline reaps
      // us instead.)
      char req[svc::kReqBufBytes];
      memset(req, 'x', static_cast<size_t>(config_.payload_bytes));
      req[config_.payload_bytes] = '\n';
      int req_len = config_.payload_bytes + 1;
      int off = 0;
      while (off < req_len) {
        ssize_t n = config_.sys->Write(thread_index, fd, req + off,
                                       static_cast<size_t>(req_len - off));
        if (n > 0) {
          off += static_cast<int>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) {
          continue;
        }
        return n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN) ? ConnOutcome::kTimedOut
                                                                  : ConnOutcome::kError;
      }
      return AwaitReapNoRead(fd);
    }
    case StallMode::kNone:
      break;
  }
  return ConnOutcome::kError;
}

LoadClient::ConnOutcome LoadClient::OneConnection(int thread_index, uint16_t src_port,
                                                  ThreadLedger* ledger) {
  attempted_.fetch_add(1, std::memory_order_relaxed);
  auto fail = [this](ConnOutcome outcome) {
    switch (outcome) {
      case ConnOutcome::kPortInUse:
        port_busy_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kRefused:
        refused_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kTimedOut:
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kAbortedAtStop:
        aborted_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kStalledReaped:
        stalled_reaped_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kError:
        errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConnOutcome::kOk:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return outcome;
  };

  ConnOutcome outcome = ConnOutcome::kError;
  int fd = ConnectSocket(thread_index, src_port, ledger, &outcome);
  if (fd < 0) {
    return fail(outcome);
  }

  if (config_.stall != StallMode::kNone) {
    outcome = RunStalled(thread_index, fd, ledger);
    if (src_port != 0 && config_.unix_path.empty()) {
      // Same RST-close as the workload path: the deterministic source port
      // must not linger in TIME_WAIT.
      linger lg{1, 0};
      setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    close(fd);
    return fail(outcome);
  }

  if (config_.workload != svc::WorkloadKind::kAccept) {
    outcome = RunRounds(thread_index, fd, ledger, config_.requests_per_conn);
    if (src_port != 0 && config_.unix_path.empty()) {
      // RST-close: a FIN would leave this exact 4-tuple in TIME_WAIT and the
      // next cycle's bind+connect to the same port would fail, but the port
      // IS the flow-group key, so we cannot substitute another one.
      linger lg{1, 0};
      setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    close(fd);
    return fail(outcome);
  }

  // kAccept: read the one-byte response until orderly EOF.
  bool got_byte = false;
  char buf[16];
  for (;;) {
    ssize_t n = config_.sys->Read(thread_index, fd, buf, sizeof(buf));
    if (n > 0) {
      got_byte = true;
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    bool timed_out = n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN);
    if (src_port != 0) {
      // See above: RST-close keeps the deterministic source port reusable.
      linger lg{1, 0};
      setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    close(fd);
    if (n == 0 && got_byte) {
      return fail(ConnOutcome::kOk);
    }
    return fail(timed_out ? ConnOutcome::kTimedOut : ConnOutcome::kError);
  }
}

}  // namespace rt
}  // namespace affinity
