#include "src/rt/load_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace affinity {
namespace rt {

LoadClient::LoadClient(const LoadClientConfig& config) : config_(config) {
  if (config_.num_threads < 1) {
    config_.num_threads = 1;
  }
}

LoadClient::~LoadClient() { Stop(); }

void LoadClient::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (int i = 0; i < config_.num_threads; ++i) {
    threads_.emplace_back([this] { RunThread(); });
  }
}

void LoadClient::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  started_ = false;
}

void LoadClient::WaitForMaxConns() {
  while (config_.max_conns > 0 && !stop_.load(std::memory_order_acquire) &&
         completed_.load(std::memory_order_relaxed) < config_.max_conns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Stop();
}

void LoadClient::RunThread() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (config_.max_conns > 0 &&
        completed_.load(std::memory_order_relaxed) >= config_.max_conns) {
      return;
    }
    if (OneConnection()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++errors_;
      // Back off briefly so a wedged server does not spin us at 100% CPU.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

bool LoadClient::OneConnection() {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return false;
  }
  // Bound every blocking call so Stop() is honored within ~1s even if the
  // server stops serving while we are connected.
  timeval tv{1, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return false;
  }

  // Read the response until orderly EOF.
  bool got_byte = false;
  char buf[16];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      got_byte = true;
      continue;
    }
    close(fd);
    return n == 0 && got_byte;
  }
}

}  // namespace rt
}  // namespace affinity
