// Per-core pending-connection ring for the real-socket runtime.
//
// Replaces the original mutex+deque AcceptQueue: the runtime analogue of
// the simulator's cloned accept queues (src/stack/listen_socket.cc), but
// built for the paper's Table 3 accounting -- the queue itself is a
// bounded, allocation-free MPMC ring (src/mem/bounded_ring.h), and the
// connections it carries are handles into a per-core slab pool
// (src/mem/conn_pool.h) so the steady-state accept->serve lifecycle never
// touches the heap:
//  - the accepting reactor allocates a PendingConn from ITS core's pool
//    and pushes the 32-bit handle onto the target ring,
//  - the serving reactor (usually the same core; a thief or re-steer
//    target otherwise) reads the block and frees it back to the OWNER's
//    pool -- a plain local push in the common case, a counted remote free
//    (the paper's slow path) when the connection crossed cores.
// Stock mode shares a single ring to reproduce the global accept-queue
// bottleneck; the ring being lock-free does not save it from the shared
// head/tail cache lines, which is the point.

#ifndef AFFINITY_SRC_RT_ACCEPT_RING_H_
#define AFFINITY_SRC_RT_ACCEPT_RING_H_

#include <atomic>
#include <chrono>
#include <cstddef>

#include "src/mem/bounded_ring.h"
#include "src/mem/conn_pool.h"
#include "src/svc/conn_state.h"
#include "src/time/timer_wheel.h"

namespace affinity {
namespace rt {

// A connection that completed the kernel handshake and was accept()ed but
// not yet handed to application code. Lives in a ConnPool block. The
// embedded svc::ConnState (request/response cursors + staging buffers) is
// what lets a handler-driven connection survive across epoll rounds without
// any heap allocation: the whole per-connection footprint is this one pool
// block, recycled on close.
struct PendingConn {
  int fd = -1;
  // The connection-locality ledger's raw facts, stamped in the pooled block
  // (never the heap): which core accept()ed this connection and which core
  // first served it. accept_core always equals the pool handle's owner; it
  // is stamped anyway so the ledger reads one field, not a handle decode.
  // serve_core stays -1 until the first service touch.
  int16_t accept_core = -1;
  int16_t serve_core = -1;
  // Block-reuse generation for the io backends' stale-completion defense:
  // bumped on every free, carried in bits [32,48) of the conn token
  // (io::MakeConnToken), so a completion raced against close-and-recycle is
  // recognized and dropped instead of driving the wrong conversation.
  // NEVER cleared by ConnState::Reset -- continuity across reuse is the
  // point. Atomic because the bump can happen on the serving core while the
  // owning reactor decodes a token (relaxed: the value only gates, never
  // orders).
  std::atomic<uint16_t> io_gen{0};
  std::chrono::steady_clock::time_point accepted_at{};
  // Lifecycle deadlines, intrusive in the pool block so arming/cancelling a
  // timer per request never allocates. Both entries belong to the SERVING
  // reactor's wheel (armed at first service touch, cancelled on every close
  // path before the block is freed): phase_timer tracks the current
  // conversation phase (handshake/idle/read/write -- re-armed only when the
  // phase KIND changes, so a byte-trickling slowloris cannot extend it),
  // life_timer is the absolute max-lifetime cap, armed once.
  timer::TimerEntry phase_timer;
  timer::TimerEntry life_timer;
  svc::ConnState svc;
};

// One pool block per in-flight accepted connection, owned by the core that
// accept()ed it.
using ConnPool = PerCorePool<PendingConn>;
using ConnHandle = ConnPool::Handle;
inline constexpr ConnHandle kNullConn = ConnPool::kNullHandle;

// The per-core accept queue: a bounded ring of pool handles. `capacity` is
// the max local accept queue length (listen() backlog split across cores);
// pushes beyond it are refused, mirroring the kernel dropping connections
// on accept-queue overflow.
using AcceptRing = BoundedRing<ConnHandle>;

}  // namespace rt
}  // namespace affinity

#endif  // AFFINITY_SRC_RT_ACCEPT_RING_H_
