#include "src/rt/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <sched.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <thread>

namespace affinity {
namespace rt {

namespace {
std::string Errno(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}
}  // namespace

int CreateListenSocket(uint16_t* port, int backlog, bool reuseport, std::string* error) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket");
    return -1;
  }
  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    *error = Errno("setsockopt(SO_REUSEADDR)");
    close(fd);
    return -1;
  }
  if (reuseport && setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    *error = Errno("setsockopt(SO_REUSEPORT)");
    close(fd);
    return -1;
  }

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(*port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = Errno("bind");
    close(fd);
    return -1;
  }
  if (listen(fd, backlog) < 0) {
    *error = Errno("listen");
    close(fd);
    return -1;
  }
  if (*port == 0) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      *error = Errno("getsockname");
      close(fd);
      return -1;
    }
    *port = ntohs(addr.sin_port);
  }
  return fd;
}

int CreateUnixListenSocket(const std::string& path, int backlog, std::string* error) {
  if (path.empty() || path.size() > sizeof(sockaddr_un{}.sun_path) - 1) {
    *error = "unix path empty or too long";
    return -1;
  }
  int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Errno("socket(AF_UNIX)");
    return -1;
  }
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  socklen_t addr_len;
  if (path[0] == '@') {
    // Abstract namespace: sun_path starts with a NUL, the name is the rest
    // of `path`, and the length must exclude trailing padding.
    memcpy(addr.sun_path + 1, path.data() + 1, path.size() - 1);
    addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size());
  } else {
    unlink(path.c_str());
    memcpy(addr.sun_path, path.data(), path.size());
    addr_len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    *error = Errno("bind(AF_UNIX)");
    close(fd);
    return -1;
  }
  if (listen(fd, backlog) < 0) {
    *error = Errno("listen(AF_UNIX)");
    close(fd);
    return -1;
  }
  return fd;
}

bool PinCurrentThreadToCpu(int cpu) {
#ifdef __linux__
  unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) % ncpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace rt
}  // namespace affinity
