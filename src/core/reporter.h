// Plain-text table/series formatting for the bench harnesses.
//
// Every bench prints the same rows/series its paper counterpart reports, so
// the output of `for b in build/bench/*; do $b; done` reads side by side with
// the paper's evaluation section.

#ifndef AFFINITY_SRC_CORE_REPORTER_H_
#define AFFINITY_SRC_CORE_REPORTER_H_

#include <string>
#include <vector>

namespace affinity {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders with aligned columns to stdout.
  void Print() const;

  static std::string Num(double value, int decimals = 1);
  static std::string Int(uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a bench banner: experiment id + what the paper's version showed.
void PrintBanner(const std::string& experiment, const std::string& paper_summary);

// Prints a one-line key: value pair, indented.
void PrintKv(const std::string& key, const std::string& value);

}  // namespace affinity

#endif  // AFFINITY_SRC_CORE_REPORTER_H_
