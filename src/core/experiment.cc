#include "src/core/experiment.h"

#include <cassert>

namespace affinity {

const char* ServerKindName(ServerKind kind) {
  switch (kind) {
    case ServerKind::kApacheWorker:
      return "apache-worker";
    case ServerKind::kLighttpd:
      return "lighttpd";
    case ServerKind::kApachePrefork:
      return "apache-prefork";
  }
  return "?";
}

ExperimentResult MeasureSaturated(const ExperimentConfig& config,
                                  const std::vector<int>& ladder,
                                  double early_stop_fraction) {
  ExperimentResult best;
  bool have_best = false;
  for (int sessions : ladder) {
    ExperimentConfig probe = config;
    probe.sessions_per_core = sessions;
    probe.client.num_sessions = 0;
    Experiment experiment(probe);
    ExperimentResult result = experiment.Run();
    if (!have_best || result.requests_per_sec > best.requests_per_sec) {
      best = result;
      have_best = true;
    } else if (result.requests_per_sec < early_stop_fraction * best.requests_per_sec) {
      break;  // past the knee; more load only deepens the convoy
    }
  }
  return best;
}

std::vector<int> DefaultSessionLadder(AcceptVariant variant) {
  if (variant == AcceptVariant::kStock) {
    // Stock saturates early at high core counts (the ladder's early-stop
    // kicks in once the convoy collapses throughput) but needs the high
    // rungs to saturate small machines.
    return {64, 160, 320, 640};
  }
  // Event-driven servers pay per-fd poll costs that grow with concurrency;
  // the knee can sit below the Apache-style sweet spot.
  return {400, 800};
}

Experiment::Experiment(const ExperimentConfig& config) : config_(config) {}

Experiment::~Experiment() = default;

void Experiment::Build() {
  assert(!built_);
  built_ = true;

  kernel_ = std::make_unique<Kernel>(config_.kernel, &loop_);
  files_ = std::make_unique<FileSet>(config_.files, &kernel_->mem(), &kernel_->types(),
                                     kernel_->num_cores());

  switch (config_.server) {
    case ServerKind::kApacheWorker:
      server_ = std::make_unique<WorkerServer>(config_.worker, kernel_.get(), files_.get());
      break;
    case ServerKind::kLighttpd:
      server_ = std::make_unique<EventServer>(config_.event_server, kernel_.get(), files_.get());
      break;
    case ServerKind::kApachePrefork:
      server_ = std::make_unique<PreforkServer>(config_.prefork, kernel_.get(), files_.get());
      break;
  }
  server_->Start();

  ClientConfig client_config = config_.client;
  if (client_config.num_sessions == 0 && client_config.open_loop_conn_rate == 0.0) {
    client_config.num_sessions = config_.sessions_per_core * kernel_->num_cores();
  }
  if (!config_.enable_client) {
    client_config.num_sessions = 0;
    client_config.open_loop_conn_rate = 0.0;
  }
  client_ = std::make_unique<HttperfClient>(client_config, &loop_, &kernel_->nic(),
                                            files_.get());
  kernel_->nic().set_wire_tx_handler(
      [this](const Packet& packet) { client_->OnServerPacket(packet); });
  if (config_.enable_client) {
    client_->Start();
  }
}

void Experiment::RunFor(Cycles duration) {
  loop_.RunUntil(loop_.Now() + duration);
}

void Experiment::BeginMeasurement() {
  kernel_->ResetAccounting();
  client_->ResetMetrics();
}

ExperimentResult Experiment::Collect(Cycles measured_duration) {
  ExperimentResult result;
  result.variant = config_.kernel.listen.variant;
  result.num_cores = kernel_->num_cores();
  result.label = std::string(AcceptVariantName(result.variant)) + "/" +
                 ServerKindName(config_.server);

  result.duration_sec = CyclesToSec(measured_duration);
  result.client = client_->metrics();
  result.requests = result.client.requests_completed;
  result.requests_per_sec = static_cast<double>(result.requests) / result.duration_sec;
  result.requests_per_sec_per_core =
      result.requests_per_sec / static_cast<double>(result.num_cores);
  result.conns_completed = result.client.conns_completed;
  result.timeouts = result.client.timeouts;

  Cycles capacity = measured_duration * static_cast<Cycles>(result.num_cores);
  Cycles busy = kernel_->TotalBusyCycles();
  result.idle_fraction =
      capacity > 0 ? 1.0 - std::min(1.0, static_cast<double>(busy) / static_cast<double>(capacity))
                   : 0.0;

  result.counters = kernel_->AggregateCounters();
  result.locks = kernel_->lock_stat().all();
  result.kernel_stats = kernel_->stats();
  result.listen_stats = kernel_->listen().stats();
  result.nic_stats = kernel_->nic().stats();
  result.sched_stats = kernel_->scheduler().stats();
  result.slab_stats = kernel_->mem().slab().stats();
  result.steals = kernel_->listen().balance().total_steals();
  result.live_connections_at_end = kernel_->live_connections();

  // Per-request time composition (Table 2). "Total time" is the per-core
  // wall time per request (1 / per-core throughput); idle and the socket-lock
  // buckets are per-request averages over the window.
  if (result.requests > 0) {
    double reqs = static_cast<double>(result.requests);
    result.us_total_per_request = 1e6 / result.requests_per_sec_per_core;
    Cycles idle_cycles = capacity > busy ? capacity - busy : 0;
    result.us_idle_per_request =
        CyclesToUs(static_cast<Cycles>(static_cast<double>(idle_cycles) / reqs));
    Cycles spin = 0;
    Cycles mutex_wait = 0;
    Cycles hold = 0;
    for (const LockClassStats& cls : result.locks) {
      // The "socket lock" of Table 2: every lock protecting listen-socket
      // state (the single stock lock, the per-core queue locks, the request
      // bucket locks).
      if (cls.name == "listen_socket" || cls.name == "accept_queue" ||
          cls.name == "request_bucket") {
        spin += cls.spin_wait;
        mutex_wait += cls.mutex_wait;
        hold += cls.hold;
      }
    }
    result.us_lock_spin_per_request = CyclesToUs(spin) / reqs;
    result.us_lock_mutex_per_request = CyclesToUs(mutex_wait) / reqs;
    result.us_lock_hold_per_request = CyclesToUs(hold) / reqs;
    result.us_other_per_request = result.us_total_per_request - result.us_idle_per_request -
                                  result.us_lock_spin_per_request -
                                  result.us_lock_hold_per_request;
  }

  if (kernel_->mem().profiler() != nullptr) {
    kernel_->mem().profiler()->Flush();
    result.sharing = kernel_->mem().profiler()->Report();
    result.shared_access_latency = kernel_->mem().profiler()->shared_access_latency();
  }
  return result;
}

ExperimentResult Experiment::Run() {
  Build();
  RunFor(config_.warmup);
  BeginMeasurement();
  RunFor(config_.measure);
  ExperimentResult result = Collect(config_.measure);
  client_->StopLaunching();
  return result;
}

}  // namespace affinity
