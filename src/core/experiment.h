// Experiment harness: builds a full system (kernel + server app + httperf
// clients), runs warmup and a measurement window, and reports every metric
// the paper's tables and figures need.

#ifndef AFFINITY_SRC_CORE_EXPERIMENT_H_
#define AFFINITY_SRC_CORE_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "src/app/compute_job.h"
#include "src/app/event_server.h"
#include "src/app/prefork_server.h"
#include "src/app/worker_server.h"
#include "src/load/httperf.h"
#include "src/load/workload.h"
#include "src/stack/kernel.h"

namespace affinity {

enum class ServerKind : uint8_t { kApacheWorker, kLighttpd, kApachePrefork };

const char* ServerKindName(ServerKind kind);

struct ExperimentConfig {
  KernelConfig kernel;
  ServerKind server = ServerKind::kApacheWorker;
  WorkerServerConfig worker;
  EventServerConfig event_server;
  PreforkServerConfig prefork;
  FileSetConfig files;
  ClientConfig client;

  // client.num_sessions == 0 -> sessions_per_core * num_cores (closed loop).
  // Sized to saturate the server (the paper searches for the saturating
  // open-loop rate instead).
  int sessions_per_core = 800;

  // Scenario benches (e.g. the make-alone baseline of Section 6.5) can run
  // the kernel + server without any client load.
  bool enable_client = true;

  // Warmup must cover the client ramp (200 ms) plus a couple of connection
  // lifetimes (~250 ms each) so measurement sees steady state.
  Cycles warmup = MsToCycles(700);
  Cycles measure = MsToCycles(400);
};

struct ExperimentResult {
  // Identification.
  std::string label;
  AcceptVariant variant = AcceptVariant::kAffinity;
  int num_cores = 0;

  // Headline numbers (measurement window only).
  double duration_sec = 0.0;
  uint64_t requests = 0;
  double requests_per_sec = 0.0;
  double requests_per_sec_per_core = 0.0;
  uint64_t conns_completed = 0;
  uint64_t timeouts = 0;
  double idle_fraction = 0.0;

  // Per-request time composition (Table 2), microseconds.
  double us_total_per_request = 0.0;
  double us_idle_per_request = 0.0;
  double us_lock_spin_per_request = 0.0;   // socket-lock classes, spin mode
  double us_lock_mutex_per_request = 0.0;  // socket-lock classes, mutex mode (idle)
  double us_lock_hold_per_request = 0.0;
  double us_other_per_request = 0.0;

  PerfCounters counters;  // aggregated over cores, measurement window
  std::vector<LockClassStats> locks;
  ClientMetrics client;
  KernelStats kernel_stats;
  ListenStats listen_stats;
  NicStats nic_stats;
  SchedStats sched_stats;
  SlabStats slab_stats;

  uint64_t steals = 0;
  uint64_t flow_migrations = 0;
  // Connections open in the kernel when the window closed (concurrency proxy).
  uint64_t live_connections_at_end = 0;

  // DProf output (only when kernel.profiling was set).
  std::vector<TypeSharingReport> sharing;
  Histogram shared_access_latency;
};

// Runs `config` at each closed-loop concurrency in `sessions_per_core_ladder`
// and returns the best-throughput result -- the closed-loop analogue of the
// paper's "search for a request rate that saturates the server". Stops early
// once throughput falls below `early_stop_fraction` of the best seen (an
// oversubscribed Stock-Accept convoy only gets worse).
ExperimentResult MeasureSaturated(const ExperimentConfig& config,
                                  const std::vector<int>& sessions_per_core_ladder,
                                  double early_stop_fraction = 0.85);

// Default ladders per listen-socket variant: Stock saturates (and then
// collapses) at far lower concurrency than the cloned variants.
std::vector<int> DefaultSessionLadder(AcceptVariant variant);

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  ~Experiment();

  // One-shot: Build + warmup + measure + Collect.
  ExperimentResult Run();

  // Phased API for custom scenarios (the Section 6.5 benches start compute
  // jobs mid-run and read latencies around them).
  void Build();
  void RunFor(Cycles duration);          // advance simulated time
  void BeginMeasurement();               // reset all accounting
  ExperimentResult Collect(Cycles measured_duration);

  Kernel& kernel() { return *kernel_; }
  EventLoop& loop() { return loop_; }
  HttperfClient& client() { return *client_; }
  ServerApp& server() { return *server_; }
  FileSet& files() { return *files_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
  EventLoop loop_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<FileSet> files_;
  std::unique_ptr<ServerApp> server_;
  std::unique_ptr<HttperfClient> client_;
  bool built_ = false;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_CORE_EXPERIMENT_H_
