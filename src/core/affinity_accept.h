// Umbrella header for the Affinity-Accept reproduction library.
//
// Quickstart:
//
//   #include "src/core/affinity_accept.h"
//
//   affinity::ExperimentConfig config;
//   config.kernel.machine = affinity::Amd48();
//   config.kernel.num_cores = 48;
//   config.kernel.listen.variant = affinity::AcceptVariant::kAffinity;
//   config.server = affinity::ServerKind::kApacheWorker;
//   affinity::Experiment experiment(config);
//   affinity::ExperimentResult result = experiment.Run();
//   // result.requests_per_sec_per_core, result.counters, result.locks, ...
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.

#ifndef AFFINITY_SRC_CORE_AFFINITY_ACCEPT_H_
#define AFFINITY_SRC_CORE_AFFINITY_ACCEPT_H_

#include "src/balance/balance_policy.h"
#include "src/balance/busy_tracker.h"
#include "src/balance/flow_migrator.h"
#include "src/balance/steal_policy.h"
#include "src/core/experiment.h"
#include "src/core/reporter.h"
#include "src/hw/nic.h"
#include "src/hw/nic_catalogue.h"
#include "src/hw/topology.h"
#include "src/load/httperf.h"
#include "src/load/workload.h"
#include "src/mem/memory_system.h"
#include "src/stack/kernel.h"
#include "src/stack/listen_socket.h"

#endif  // AFFINITY_SRC_CORE_AFFINITY_ACCEPT_H_
