#include "src/core/reporter.h"

#include <cinttypes>
#include <cstdio>

namespace affinity {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::printf("  %s\n", rule.c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::Num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::Int(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void PrintBanner(const std::string& experiment, const std::string& paper_summary) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  if (!paper_summary.empty()) {
    std::printf("  paper: %s\n", paper_summary.c_str());
  }
}

void PrintKv(const std::string& key, const std::string& value) {
  std::printf("  %-36s %s\n", (key + ":").c_str(), value.c_str());
}

}  // namespace affinity
