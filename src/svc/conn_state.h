// Per-connection service state for the request/response layer.
//
// The paper's workloads (Section 6: Apache serving the SpecWeb-like mix)
// are request/response conversations on held connections, not one-shot
// accepts. That means connection state must outlive a single epoll round:
// a partially read request, a partially written response, and the epoll
// event mask the reactor last armed all have to live somewhere between
// wakeups. That somewhere is this struct, embedded in the pooled
// rt::PendingConn block -- so the steady-state request/response lifecycle
// stays zero-malloc (the rt_allocfree_test gate), and a stolen connection
// carries its conversation with it to the thief.
//
// Deliberately trivially destructible (fixed char arrays, no owning
// members): PerCorePool requires it, and it is what makes a block reusable
// with a plain Reset() instead of destructor bookkeeping.

#ifndef AFFINITY_SRC_SVC_CONN_STATE_H_
#define AFFINITY_SRC_SVC_CONN_STATE_H_

#include <cstdint>

namespace affinity {
namespace svc {

// Request staging capacity. Requests are one newline-terminated line; a
// line that overflows this is a protocol violation (RST-closed), never a
// reallocation.
inline constexpr uint32_t kReqBufBytes = 2048;

// Response header staging: "<payload-len>\n" in decimal.
inline constexpr uint32_t kHeadBufBytes = 16;

// Where the conversation stands between epoll rounds.
enum class ConnPhase : uint8_t {
  kReading,  // accumulating a request line into req_buf
  kWriting,  // flushing head_buf then the response payload
};

struct ConnState {
  ConnPhase phase = ConnPhase::kReading;
  uint8_t listener = 0;       // which rt listener accepted this connection
  bool remote_served = false;  // popped from another core's ring (steal/re-steer)
  // Locality-ledger bit: the serving core IS the accepting core. Distinct
  // from !remote_served, which is about RINGS -- stock mode's single shared
  // ring makes every pop "local" even when the conversation crossed cores,
  // and steering can park a conn on a ring that is neither the accepting
  // nor the serving core. Requests completed on this connection count into
  // rt_requests_local_core / rt_requests_remote_core by this bit.
  bool accept_local = true;
  // Distance class of serving core vs accepting core (src/topo LedgerBucket:
  // 0 local, 1 same LLC, 2 cross LLC, 3 cross node). Refines accept_local
  // into the split distance ledger; always 0 when accept_local.
  uint8_t accept_dist = 0;
  bool opened = false;         // OnAccept ran; OnClose is owed exactly once

  uint16_t rounds_done = 0;  // completed request/response rounds

  // The epoll event mask currently registered for this connection's fd;
  // 0 = not registered (the reactor is driving it eagerly).
  uint32_t armed = 0;

  uint32_t req_len = 0;  // bytes staged in req_buf so far

  // kStream: payload chunks still owed after the one currently staged in
  // the response cursor. The handler restages the cursor (RestageChunk)
  // each time it drains until this hits zero, so a multi-buffer response
  // survives kWantWrite parking without the state machine growing a phase.
  uint32_t stream_remaining = 0;

  // Response cursor. resp_data points into req_buf (echo/think) or into
  // handler-owned storage that outlives every connection (static content);
  // the handler never copies payload bytes.
  const char* resp_data = nullptr;
  uint32_t resp_len = 0;
  uint32_t resp_off = 0;
  uint32_t head_len = 0;
  uint32_t head_off = 0;

  // Per-request service latency: stamped when the first byte of a request
  // arrives, read back by the reactor when the response completes.
  uint64_t req_start_ns = 0;
  uint64_t last_request_ns = 0;

  // Intrusive doubly-linked list of a reactor's open connections (handles
  // into the conn pool), so Run() exit can close every held connection it
  // still owns. 0xFFFFFFFF (rt::kNullConn) terminates.
  uint32_t open_prev = 0xFFFFFFFFu;
  uint32_t open_next = 0xFFFFFFFFu;

  // Idle as the deadline subsystem and the pool-pressure evictor define it:
  // parked waiting for request bytes with nothing staged. True both before
  // the first byte ever (handshake phase) and between requests -- exactly
  // the states a slowloris client pins.
  bool IdleBetweenRequests() const {
    return phase == ConnPhase::kReading && req_len == 0;
  }

  char head_buf[kHeadBufBytes];
  char req_buf[kReqBufBytes];

  // Fresh-conversation state for a block coming out of the pool. Buffers
  // are left as-is: req_len/resp cursors gate every read of them.
  void Reset(uint8_t listener_id) {
    phase = ConnPhase::kReading;
    listener = listener_id;
    remote_served = false;
    accept_local = true;
    accept_dist = 0;
    opened = false;
    rounds_done = 0;
    armed = 0;
    req_len = 0;
    stream_remaining = 0;
    resp_data = nullptr;
    resp_len = 0;
    resp_off = 0;
    head_len = 0;
    head_off = 0;
    req_start_ns = 0;
    last_request_ns = 0;
    open_prev = 0xFFFFFFFFu;
    open_next = 0xFFFFFFFFu;
  }
};

}  // namespace svc
}  // namespace affinity

#endif  // AFFINITY_SRC_SVC_CONN_STATE_H_
