// The built-in request/response handlers mirroring the paper's Section 6
// workload mix:
//  - EchoHandler:    echo-N, the request-reuse axis of Figure 7 (N rounds
//                    per connection amortize the accept),
//  - StaticHandler:  in-memory object table keyed by the request line, the
//                    static-content file-size axis of Figure 9,
//  - ThinkHandler:   CPU burn before the reply, the think-time axis of
//                    Figure 8 (app::ComputeJob's busy-loop, live).
//
// Protocol (shared with rt::LoadClient): a request is one newline-
// terminated line; a response is "<payload-len>\n" followed by exactly
// payload-len bytes. Requests are not pipelined -- bytes after the
// terminator are a protocol violation (RST).
//
// All three share one state machine (RequestResponseHandler::Pump) that
// reads until a full request line, builds a response, and writes it
// through, looping until the socket says EAGAIN -- so a verdict always
// means "epoll must wake us", never "try again immediately".

#ifndef AFFINITY_SRC_SVC_HANDLERS_H_
#define AFFINITY_SRC_SVC_HANDLERS_H_

#include <string>
#include <vector>

#include "src/svc/conn_handler.h"

namespace affinity {
namespace svc {

class RequestResponseHandler : public ConnHandler {
 public:
  // `max_rounds` > 0: the server closes after that many responses (echo-N);
  // 0: serve until the client closes.
  explicit RequestResponseHandler(int max_rounds) : max_rounds_(max_rounds) {}

  Verdict OnAccept(const ConnRef& c) override;
  Verdict OnReadable(const ConnRef& c) override;
  Verdict OnWritable(const ConnRef& c) override;
  void OnClose(const ConnRef& c) override;

 protected:
  // Points c.st's response cursor (head_buf/head_len + resp_data/resp_len)
  // at the reply for the request line in c.st->req_buf[0..req_len). Must
  // not allocate; resp_data must outlive the connection's write phase.
  virtual void BuildResponse(const ConnRef& c, uint32_t req_len) = 0;

  // Writes the "<len>\n" framing header into c.st->head_buf.
  static void StageHead(ConnState* st, uint32_t payload_len);

  // Called when the staged response cursor has fully drained. Return true
  // after restaging more payload bytes for the SAME response (the framed
  // total promised by the header must still be honored); false means the
  // response is complete and the round ends. Lets a handler serve a
  // response far larger than any staging buffer, one chunk at a time,
  // surviving kWantWrite parking between chunks.
  virtual bool RestageChunk(const ConnRef& c) {
    (void)c;
    return false;
  }

 private:
  // The full state machine: read -> respond -> write, looping until EAGAIN
  // or a close decision.
  Verdict Pump(const ConnRef& c);
  // One phase each; kWantRead/kWantWrite mean EAGAIN, anything else is a
  // terminal decision or phase completion.
  Verdict ReadPhase(const ConnRef& c);
  Verdict WritePhase(const ConnRef& c);

  int max_rounds_;
};

class EchoHandler : public RequestResponseHandler {
 public:
  explicit EchoHandler(int max_rounds) : RequestResponseHandler(max_rounds) {}
  const char* name() const override { return "echo"; }

 protected:
  void BuildResponse(const ConnRef& c, uint32_t req_len) override;
};

class StaticHandler : public RequestResponseHandler {
 public:
  StaticHandler(int num_objects, int object_bytes);
  const char* name() const override { return "static"; }

  int num_objects() const { return static_cast<int>(objects_.size()); }

 protected:
  void BuildResponse(const ConnRef& c, uint32_t req_len) override;

 private:
  // Immutable after construction; responses point straight into these
  // strings (zero copy), so reactors share them read-only.
  std::vector<std::string> objects_;
};

class ThinkHandler : public RequestResponseHandler {
 public:
  ThinkHandler(int think_us, int max_rounds)
      : RequestResponseHandler(max_rounds), think_us_(think_us) {}
  const char* name() const override { return "think"; }

 protected:
  void BuildResponse(const ConnRef& c, uint32_t req_len) override;

 private:
  int think_us_;
};

// Chunked static content: every request is answered with one response of
// stream_chunks * stream_chunk_bytes payload bytes, framed with the total
// up front but staged one chunk at a time through RestageChunk. The point
// is depth in the WRITE half of the state machine: the response cannot fit
// the socket buffer, so the connection must park on kWantWrite (and, under
// the uring backend, re-arm a one-shot POLL_ADD) mid-response -- the
// multi-buffer static-content shape of the paper's Figure 9 that the
// single-buffer handlers above never exercise.
class StreamHandler : public RequestResponseHandler {
 public:
  StreamHandler(int chunk_bytes, int chunks, int max_rounds);
  const char* name() const override { return "stream"; }

  uint32_t total_bytes() const { return chunk_bytes_ * chunks_; }

 protected:
  void BuildResponse(const ConnRef& c, uint32_t req_len) override;
  bool RestageChunk(const ConnRef& c) override;

 private:
  // One immutable chunk shared by every connection and every restage;
  // responses never copy payload, they re-point at this.
  std::string chunk_;
  uint32_t chunk_bytes_;
  uint32_t chunks_;
};

// Busy-burns approximately `us` microseconds of CPU (steady-clock bounded).
void BurnCpuUs(uint64_t us);

// The fixed not-found payload StaticHandler serves for unknown keys.
const char* StaticNotFoundBody();

}  // namespace svc
}  // namespace affinity

#endif  // AFFINITY_SRC_SVC_HANDLERS_H_
