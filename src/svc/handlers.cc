#include "src/svc/handlers.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace affinity {
namespace svc {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

constexpr char kNotFound[] = "no such object";

}  // namespace

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kWantRead:
      return "want_read";
    case Verdict::kWantWrite:
      return "want_write";
    case Verdict::kClose:
      return "close";
    case Verdict::kRstClose:
      return "rst_close";
  }
  return "?";
}

const char* WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kAccept:
      return "accept";
    case WorkloadKind::kEcho:
      return "echo";
    case WorkloadKind::kStatic:
      return "static";
    case WorkloadKind::kThink:
      return "think";
    case WorkloadKind::kStream:
      return "stream";
  }
  return "?";
}

bool ParseWorkload(const char* name, WorkloadKind* out) {
  if (std::strcmp(name, "accept") == 0) {
    *out = WorkloadKind::kAccept;
  } else if (std::strcmp(name, "echo") == 0) {
    *out = WorkloadKind::kEcho;
  } else if (std::strcmp(name, "static") == 0) {
    *out = WorkloadKind::kStatic;
  } else if (std::strcmp(name, "think") == 0) {
    *out = WorkloadKind::kThink;
  } else if (std::strcmp(name, "stream") == 0) {
    *out = WorkloadKind::kStream;
  } else {
    return false;
  }
  return true;
}

const char* StaticNotFoundBody() { return kNotFound; }

void BurnCpuUs(uint64_t us) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  // volatile sink so the arithmetic is real work the optimizer keeps.
  volatile uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      sink = sink + static_cast<uint64_t>(i);
    }
  }
}

void RequestResponseHandler::StageHead(ConnState* st, uint32_t payload_len) {
  int n = std::snprintf(st->head_buf, sizeof(st->head_buf), "%u\n", payload_len);
  st->head_len = n > 0 ? static_cast<uint32_t>(n) : 0;
  st->head_off = 0;
}

Verdict RequestResponseHandler::OnAccept(const ConnRef& c) {
  // The request may already be sitting in the socket buffer (it usually is
  // for a connection that waited in a ring), so drive eagerly right away.
  return Pump(c);
}

Verdict RequestResponseHandler::OnReadable(const ConnRef& c) { return Pump(c); }

Verdict RequestResponseHandler::OnWritable(const ConnRef& c) { return Pump(c); }

void RequestResponseHandler::OnClose(const ConnRef& c) { (void)c; }

Verdict RequestResponseHandler::ReadPhase(const ConnRef& c) {
  ConnState* st = c.st;
  for (;;) {
    if (st->req_len >= kReqBufBytes) {
      return Verdict::kRstClose;  // request line overflows the staging buffer
    }
    ssize_t n = c.sys->Read(c.core, c.fd, st->req_buf + st->req_len,
                            kReqBufBytes - st->req_len);
    if (n == 0) {
      // Orderly EOF. Between requests this is the client being done; mid-
      // request it is an aborted conversation. Either way: orderly close.
      return Verdict::kClose;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Verdict::kWantRead;
      }
      if (errno == EINTR) {
        continue;
      }
      // ECONNRESET and friends: the peer is gone, nothing to reset back.
      return Verdict::kClose;
    }
    if (st->req_len == 0) {
      st->req_start_ns = NowNs();
    }
    // Scan only the bytes this read delivered for the terminator.
    const char* nl = static_cast<const char*>(
        std::memchr(st->req_buf + st->req_len, '\n', static_cast<size_t>(n)));
    st->req_len += static_cast<uint32_t>(n);
    if (nl == nullptr) {
      continue;  // partial request: keep reading
    }
    uint32_t line_len = static_cast<uint32_t>(nl - st->req_buf);
    if (line_len + 1 != st->req_len) {
      // Bytes beyond the terminator: this protocol has no pipelining, and
      // echo responses alias req_buf, so trailing bytes cannot be staged.
      return Verdict::kRstClose;
    }
    BuildResponse(c, line_len);
    st->resp_off = 0;
    st->phase = ConnPhase::kWriting;
    return Verdict::kWantWrite;  // phase transition, not an EAGAIN
  }
}

Verdict RequestResponseHandler::WritePhase(const ConnRef& c) {
  ConnState* st = c.st;
  for (;;) {
    while (st->head_off < st->head_len) {
      ssize_t n = c.sys->Write(c.core, c.fd, st->head_buf + st->head_off,
                               st->head_len - st->head_off);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Verdict::kWantWrite;
        }
        if (errno == EINTR) {
          continue;
        }
        return Verdict::kClose;  // EPIPE/ECONNRESET: peer gone mid-response
      }
      st->head_off += static_cast<uint32_t>(n);
    }
    while (st->resp_off < st->resp_len) {
      ssize_t n = c.sys->Write(c.core, c.fd, st->resp_data + st->resp_off,
                               st->resp_len - st->resp_off);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Verdict::kWantWrite;
        }
        if (errno == EINTR) {
          continue;
        }
        return Verdict::kClose;
      }
      st->resp_off += static_cast<uint32_t>(n);
    }
    if (!RestageChunk(c)) {
      break;  // the staged cursor was the whole (or last chunk of the) response
    }
  }
  // Round complete: stamp the latency, reset for the next request.
  ++st->rounds_done;
  st->last_request_ns = NowNs() - st->req_start_ns;
  st->req_len = 0;
  st->phase = ConnPhase::kReading;
  if (max_rounds_ > 0 && st->rounds_done >= static_cast<uint16_t>(max_rounds_)) {
    return Verdict::kClose;
  }
  return Verdict::kWantRead;  // phase transition, not an EAGAIN
}

Verdict RequestResponseHandler::Pump(const ConnRef& c) {
  // Loop phases until the socket blocks or the conversation ends. The loop
  // is bounded by the kernel socket buffers: each full lap consumes a whole
  // request from them, and the protocol forbids pipelining.
  for (;;) {
    if (c.st->phase == ConnPhase::kReading) {
      Verdict v = ReadPhase(c);
      if (v != Verdict::kWantWrite) {
        return v;  // EAGAIN (kWantRead) or a close decision
      }
      // Fall through: a response is staged, try to write it now.
    }
    Verdict v = WritePhase(c);
    if (v != Verdict::kWantRead) {
      return v;  // EAGAIN (kWantWrite) or a close decision
    }
    // Response fully written: eagerly try the next request (usually EAGAIN,
    // but a stolen connection may have one queued already).
  }
}

void EchoHandler::BuildResponse(const ConnRef& c, uint32_t req_len) {
  ConnState* st = c.st;
  st->resp_data = st->req_buf;  // zero copy: the request IS the payload
  st->resp_len = req_len;
  StageHead(st, req_len);
}

StaticHandler::StaticHandler(int num_objects, int object_bytes)
    : RequestResponseHandler(/*max_rounds=*/0) {  // client-driven close
  if (num_objects < 1) {
    num_objects = 1;
  }
  if (object_bytes < 1) {
    object_bytes = 1;
  }
  objects_.reserve(static_cast<size_t>(num_objects));
  for (int i = 0; i < num_objects; ++i) {
    // Deterministic per-object contents so a test can verify which object
    // came back.
    objects_.push_back(
        std::string(static_cast<size_t>(object_bytes), static_cast<char>('a' + i % 26)));
  }
}

void StaticHandler::BuildResponse(const ConnRef& c, uint32_t req_len) {
  ConnState* st = c.st;
  // Key format: "obj<index>". Parsed by hand: the hot path must not
  // allocate, and atoi on a non-terminated buffer would walk off the line.
  const char* line = st->req_buf;
  long index = -1;
  if (req_len > 3 && line[0] == 'o' && line[1] == 'b' && line[2] == 'j') {
    index = 0;
    for (uint32_t i = 3; i < req_len; ++i) {
      if (line[i] < '0' || line[i] > '9') {
        index = -1;
        break;
      }
      index = index * 10 + (line[i] - '0');
      if (index >= static_cast<long>(objects_.size())) {
        index = -1;
        break;
      }
    }
  }
  if (index < 0) {
    st->resp_data = kNotFound;
    st->resp_len = static_cast<uint32_t>(sizeof(kNotFound) - 1);
  } else {
    const std::string& obj = objects_[static_cast<size_t>(index)];
    st->resp_data = obj.data();
    st->resp_len = static_cast<uint32_t>(obj.size());
  }
  StageHead(st, st->resp_len);
}

void ThinkHandler::BuildResponse(const ConnRef& c, uint32_t req_len) {
  // The think time is application CPU attributable to the request, burned
  // on the SERVING core -- which for a stolen connection is the thief, the
  // locality cost the paper's Figure 8 sweep measures.
  BurnCpuUs(static_cast<uint64_t>(think_us_));
  ConnState* st = c.st;
  st->resp_data = st->req_buf;
  st->resp_len = req_len;
  StageHead(st, req_len);
}

StreamHandler::StreamHandler(int chunk_bytes, int chunks, int max_rounds)
    : RequestResponseHandler(max_rounds),
      chunk_bytes_(chunk_bytes < 1 ? 1u : static_cast<uint32_t>(chunk_bytes)),
      chunks_(chunks < 1 ? 1u : static_cast<uint32_t>(chunks)) {
  // Deterministic rotating fill so a test can spot a restage that re-sent
  // stale cursor offsets (every chunk is byte-identical, offsets are not).
  chunk_.resize(chunk_bytes_);
  for (uint32_t i = 0; i < chunk_bytes_; ++i) {
    chunk_[i] = static_cast<char>('a' + i % 26);
  }
}

void StreamHandler::BuildResponse(const ConnRef& c, uint32_t req_len) {
  (void)req_len;  // any request line gets the stream
  ConnState* st = c.st;
  // The header promises the FULL payload up front; the cursor only ever
  // holds one chunk of it. stream_remaining is the restage budget.
  StageHead(st, total_bytes());
  st->resp_data = chunk_.data();
  st->resp_len = chunk_bytes_;
  st->stream_remaining = chunks_ - 1;
}

bool StreamHandler::RestageChunk(const ConnRef& c) {
  ConnState* st = c.st;
  if (st->stream_remaining == 0) {
    return false;
  }
  --st->stream_remaining;
  st->resp_off = 0;  // same immutable chunk, rewound
  return true;
}

std::unique_ptr<ConnHandler> MakeHandler(WorkloadKind kind, const HandlerParams& params) {
  switch (kind) {
    case WorkloadKind::kAccept:
      return nullptr;
    case WorkloadKind::kEcho:
      return std::unique_ptr<ConnHandler>(new EchoHandler(params.echo_rounds));
    case WorkloadKind::kStatic:
      return std::unique_ptr<ConnHandler>(
          new StaticHandler(params.num_objects, params.object_bytes));
    case WorkloadKind::kThink:
      return std::unique_ptr<ConnHandler>(
          new ThinkHandler(params.think_us, params.echo_rounds));
    case WorkloadKind::kStream:
      return std::unique_ptr<ConnHandler>(new StreamHandler(
          params.stream_chunk_bytes, params.stream_chunks, params.echo_rounds));
  }
  return nullptr;
}

}  // namespace svc
}  // namespace affinity
