// ConnHandler: the pluggable per-connection service API.
//
// A handler is the application layer of the rt runtime: the reactor pops a
// connection off an accept ring, calls OnAccept once, then OnReadable /
// OnWritable as epoll reports readiness, and OnClose exactly once before
// the fd is released. The returned Verdict is literally the epoll event the
// connection needs next (or a close decision), so the reactor's drive loop
// stays a three-way switch.
//
// Handlers are stateless after construction and shared by every reactor
// thread; ALL per-connection state lives in the ConnState the reactor
// passes in (a field of the pooled rt::PendingConn). That is what lets a
// stolen connection continue on the thief: the state machine travels with
// the block, the handler is just code.
//
// All I/O goes through the fault::SysIface seam, keyed by the serving
// reactor's core, so every handler is fault-injectable from day one.

#ifndef AFFINITY_SRC_SVC_CONN_HANDLER_H_
#define AFFINITY_SRC_SVC_CONN_HANDLER_H_

#include <cstdint>
#include <memory>

#include "src/fault/sys_iface.h"
#include "src/svc/conn_state.h"

namespace affinity {
namespace svc {

// What the connection needs next. kWantRead/kWantWrite map 1:1 onto the
// EPOLLIN/EPOLLOUT mask the reactor (re-)arms; the handler only returns
// them after the socket said EAGAIN, so level-triggered epoll will fire.
enum class Verdict : uint8_t {
  kWantRead,
  kWantWrite,
  kClose,     // orderly FIN
  kRstClose,  // protocol violation: SO_LINGER{1,0} reset
};

const char* VerdictName(Verdict verdict);

// Everything a handler callback needs, bundled so signatures stay flat.
// `core` is the SERVING reactor's index -- the fault-injection key -- which
// for a stolen connection is the thief, not the accepting core.
struct ConnRef {
  ConnState* st = nullptr;
  int fd = -1;
  int core = 0;
  fault::SysIface* sys = nullptr;
};

class ConnHandler {
 public:
  virtual ~ConnHandler() = default;

  virtual const char* name() const = 0;

  // First touch after the pop: the state is Reset, the fd is nonblocking.
  // May complete whole rounds immediately (the request often arrived while
  // the connection sat in the ring).
  virtual Verdict OnAccept(const ConnRef& c) = 0;
  virtual Verdict OnReadable(const ConnRef& c) = 0;
  virtual Verdict OnWritable(const ConnRef& c) = 0;

  // Exactly once per connection that saw OnAccept, on every close path
  // (verdict, peer error, reactor shutdown). Must not perform I/O on c.fd
  // beyond what a close needs.
  virtual void OnClose(const ConnRef& c) = 0;
};

// The workload axis shared by the runtime, the load client, and the bench:
// which handler fronts the listener / what traffic the client offers.
enum class WorkloadKind : uint8_t {
  kAccept,  // no handler: the legacy 1-byte-write-and-close accept workload
  kEcho,    // echo-N: mirror each request line back, N rounds per connection
  kStatic,  // in-memory object table keyed by the request line
  kThink,   // CPU burn before echoing (app::ComputeJob-style think time)
  kStream,  // chunked static content: one response larger than any buffer
};

const char* WorkloadName(WorkloadKind kind);
bool ParseWorkload(const char* name, WorkloadKind* out);

// Knobs for the built-in handlers (unused fields ignored per kind).
struct HandlerParams {
  // kEcho/kThink: server closes after this many rounds; 0 = serve until the
  // client closes.
  int echo_rounds = 0;
  // kThink: busy-burn per request, the paper's Figure 8 think-time knob.
  int think_us = 100;
  // kStatic: object table shape ("obj<i>" keys, deterministic contents).
  int num_objects = 64;
  int object_bytes = 512;
  // kStream: each response is stream_chunks chunks of stream_chunk_bytes,
  // staged one chunk at a time -- the total is framed up front, so the
  // client sees one large response while the server never holds more than
  // one chunk. Defaults give 64 KiB, comfortably past a loopback socket
  // buffer, so the write path MUST park on kWantWrite mid-response.
  int stream_chunk_bytes = 1024;
  int stream_chunks = 64;
};

// Builds the built-in handler for `kind` (nullptr for kAccept: the reactor
// keeps its inline accept-workload hot path).
std::unique_ptr<ConnHandler> MakeHandler(WorkloadKind kind, const HandlerParams& params);

}  // namespace svc
}  // namespace affinity

#endif  // AFFINITY_SRC_SVC_CONN_HANDLER_H_
