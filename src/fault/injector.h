// FaultInjector: a SysIface that executes a FaultPlan.
//
// Wraps a real SysIface (the passthrough by default) and, before each
// forwarded call, consults the plan against this (site, core) pair's call
// counter. Matching rules fire in plan order; the first that fires decides
// the call's fate. Counting and injection are deterministic per core (see
// fault_plan.h); the only cross-core state is the relaxed per-(site, core)
// counters, each owned by one reactor thread in practice.
//
// Stalls sleep in small slices and re-check the runtime's stop flag, so a
// "wedged" reactor still shuts down cleanly when the run ends mid-stall.
// Kills are sticky: once a core's kKill rule fires, every later blocking
// wait (EpollWait or UringWait, whichever engine the reactor runs) on that
// core returns kKillReactor (a dead reactor stays dead even if the call
// counter would have moved past the rule).

#ifndef AFFINITY_SRC_FAULT_INJECTOR_H_
#define AFFINITY_SRC_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/fault/fault_plan.h"
#include "src/fault/sys_iface.h"

namespace affinity {
namespace fault {

// Per-site injection totals, snapshot-safe while reactors run.
struct InjectorStats {
  uint64_t injected[kNumCallSites] = {};
  uint64_t total() const {
    uint64_t sum = 0;
    for (int i = 0; i < kNumCallSites; ++i) sum += injected[i];
    return sum;
  }
};

class FaultInjector : public SysIface {
 public:
  // `num_cores` bounds the per-core schedule state. Calls reporting a core
  // outside [0, num_cores) are forwarded uninjected.
  FaultInjector(const FaultPlan& plan, int num_cores, SysIface* real = DefaultSys());
  ~FaultInjector() override;

  // Stalls re-check *stop between sleep slices so Stop() is honored while a
  // reactor is wedged. Optional; without it stalls run to their full length.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }

  // Called (from the faulting thread) on every injected fault; the runtime
  // binds this to its rt_fault_injected_* metric cells. Set before the
  // reactor threads start.
  void set_on_inject(std::function<void(CallSite, int core)> fn) { on_inject_ = std::move(fn); }

  int Accept4(int core, int sockfd, sockaddr* addr, socklen_t* addrlen, int flags) override;
  int EpollWait(int core, int epfd, epoll_event* events, int maxevents, int timeout_ms) override;
  int Close(int core, int fd) override;
  int AttachFilter(int core, int sockfd, int level, int optname, const void* optval,
                   socklen_t optlen) override;
  ssize_t Read(int core, int fd, void* buf, size_t count) override;
  ssize_t Write(int core, int fd, const void* buf, size_t count) override;
  // kErrno fails WITHOUT performing the epoll_ctl: an arming failure, the
  // shape that strands a held connection if the reactor mishandles it.
  int EpollCtl(int core, int epfd, int op, int fd, epoll_event* event) override;
  int Connect(int core, int sockfd, const sockaddr* addr, socklen_t addrlen) override;
  // kErrno fails WITHOUT submitting: the staged SQEs stay queued for the
  // next enter, so an injected submit fault is pure latency.
  int UringSubmit(int core, int ring_fd, unsigned to_submit) override;
  // The uring engine's blocking point: same kStall/kKill semantics (and the
  // same sticky kill latch) as EpollWait.
  int UringWait(int core, int ring_fd, unsigned to_submit, unsigned min_complete,
                int timeout_ms) override;

  InjectorStats Stats() const;
  uint64_t calls(CallSite site, int core) const;

 private:
  // The first rule firing for this call, or null. Advances the call counter.
  const FaultRule* Match(CallSite site, int core);
  void NoteInjected(CallSite site, int core);
  // kDelay/kStall body: sliced, stop-interruptible sleep.
  void SleepFor(uint64_t duration_us) const;

  FaultPlan plan_;
  int num_cores_;
  SysIface* real_;
  const std::atomic<bool>* stop_ = nullptr;
  std::function<void(CallSite, int core)> on_inject_;
  // [site][core] call counters and injected counters; fixed-size slabs so
  // the hot path stays allocation-free.
  std::unique_ptr<std::atomic<uint64_t>[]> calls_;
  std::unique_ptr<std::atomic<uint64_t>[]> injected_;
  std::unique_ptr<std::atomic<bool>[]> killed_;  // sticky per-core kill latch
};

}  // namespace fault
}  // namespace affinity

#endif  // AFFINITY_SRC_FAULT_INJECTOR_H_
