// FaultPlan: a declarative, seeded schedule of syscall faults.
//
// A plan is a list of rules, each keyed by (call site, core) and armed by
// the per-(site, core) call counter the injector maintains: "the 20th
// accept4 on core 2 and the 49 after it fail with EMFILE", "core 1's
// epoll_wait stalls for 500 ms at call 100", "the cBPF attach is refused".
// Determinism comes from counting calls instead of reading clocks, and from
// deriving every probabilistic decision from a hash of (seed, site, core,
// call index) -- two runs of the same plan against the same per-core call
// sequences inject identical faults, regardless of how the reactor threads
// interleave against each other. That is what lets the CI chaos matrix
// assert exact conservation instead of eyeballing flakes.

#ifndef AFFINITY_SRC_FAULT_FAULT_PLAN_H_
#define AFFINITY_SRC_FAULT_FAULT_PLAN_H_

#include <cerrno>
#include <cstdint>
#include <vector>

namespace affinity {
namespace fault {

// The reactor call sites the injector can interpose (see SysIface).
enum class CallSite : uint8_t {
  kAccept4 = 0,
  kEpollWait = 1,
  kClose = 2,
  kAttachFilter = 3,
  // The request/response data path (svc handlers + held-conn epoll arming):
  kRead = 4,
  kWrite = 5,
  kEpollCtl = 6,
  // The client side: rt::LoadClient's connect(2), keyed by client thread.
  kConnect = 7,
  // The io_uring backend's enter(2) sites (src/io/uring_backend):
  // kUringWait is that engine's blocking point and carries the same
  // stall/kill semantics as kEpollWait; kUringSubmit is the non-blocking
  // mid-iteration flush (an injected errno leaves the SQEs staged for the
  // next enter, so submission faults degrade to latency, never loss).
  kUringSubmit = 8,
  kUringWait = 9,
};
inline constexpr int kNumCallSites = 10;

// Which engine's blocking site a reactor-targeting plan should name; see
// ReactorStall/ReactorKill below. Validated against RtConfig::backend by
// ValidateRtConfig -- a plan naming the wrong engine's site would never
// fire, which is a config error, not a quiet no-op.
inline constexpr bool IsEpollOnlySite(CallSite site) {
  return site == CallSite::kEpollWait || site == CallSite::kEpollCtl;
}
inline constexpr bool IsUringOnlySite(CallSite site) {
  return site == CallSite::kUringSubmit || site == CallSite::kUringWait;
}

const char* CallSiteName(CallSite site);

enum class FaultAction : uint8_t {
  kErrno,  // fail the call with `err` (Close still releases the fd)
  kDelay,  // sleep `duration_us`, then perform the real call
  kStall,  // blocking waits (kEpollWait/kUringWait) only: block
           // `duration_us` (interruptible by stop) -- the reactor stops
           // heartbeating, which is what trips the watchdog
  kKill,   // blocking waits only: return SysIface::kKillReactor,
           // permanently -- the reactor exits Run() as if its thread died
};

struct FaultRule {
  CallSite site = CallSite::kAccept4;
  int core = -1;  // -1 = every core
  FaultAction action = FaultAction::kErrno;
  int err = EIO;              // kErrno: the errno to fail with
  uint64_t duration_us = 0;   // kDelay / kStall: how long
  uint64_t after_calls = 0;   // arm once this (site, core) call count is reached
  uint64_t count = 1;         // how many consecutive calls the rule covers
  double probability = 1.0;   // per-eligible-call coin, hashed from the seed
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  // --- canned plans for the chaos matrix ---

  // `core`'s blocking wait stalls for `stall_ms` starting at its
  // `after_calls`-th call: a reactor wedge that later resolves. `site`
  // names the engine's blocking point -- kEpollWait (default) or
  // kUringWait for --backend=uring runs.
  static FaultPlan ReactorStall(int core, uint64_t after_calls, uint64_t stall_ms,
                                CallSite site = CallSite::kEpollWait) {
    FaultPlan plan;
    FaultRule rule;
    rule.site = site;
    rule.core = core;
    rule.action = FaultAction::kStall;
    rule.duration_us = stall_ms * 1000;
    rule.after_calls = after_calls;
    plan.rules.push_back(rule);
    return plan;
  }

  // `core`'s reactor dies at its `after_calls`-th blocking wait (`site` as
  // in ReactorStall) and never comes back.
  static FaultPlan ReactorKill(int core, uint64_t after_calls,
                               CallSite site = CallSite::kEpollWait) {
    FaultPlan plan;
    FaultRule rule;
    rule.site = site;
    rule.core = core;
    rule.action = FaultAction::kKill;
    rule.after_calls = after_calls;
    plan.rules.push_back(rule);
    return plan;
  }

  // Every core's accept4 fails with `err` for `count` calls starting at
  // `after_calls` -- the EMFILE/ENFILE storm shape.
  static FaultPlan AcceptErrnoBurst(int err, uint64_t after_calls, uint64_t count) {
    FaultPlan plan;
    FaultRule rule;
    rule.site = CallSite::kAccept4;
    rule.core = -1;
    rule.action = FaultAction::kErrno;
    rule.err = err;
    rule.after_calls = after_calls;
    rule.count = count;
    plan.rules.push_back(rule);
    return plan;
  }

  // Generic errno burst at any site: `count` calls at `site` on `core`
  // (-1 = every core) fail with `err` starting at call `after_calls`. The
  // building block for data-path (read/write) and client-side (connect)
  // chaos shapes.
  static FaultPlan ErrnoBurst(CallSite site, int core, int err, uint64_t after_calls,
                              uint64_t count) {
    FaultPlan plan;
    FaultRule rule;
    rule.site = site;
    rule.core = core;
    rule.action = FaultAction::kErrno;
    rule.err = err;
    rule.after_calls = after_calls;
    rule.count = count;
    plan.rules.push_back(rule);
    return plan;
  }

  // Two reactors die, staggered: the correlated-failure shape where the
  // second death lands on a survivor set that already absorbed a failover
  // (failover-onto-failed-over).
  static FaultPlan TwoReactorsDie(int first_core, uint64_t first_after, int second_core,
                                  uint64_t second_after) {
    FaultPlan plan;
    FaultRule rule;
    rule.site = CallSite::kEpollWait;
    rule.action = FaultAction::kKill;
    rule.core = first_core;
    rule.after_calls = first_after;
    plan.rules.push_back(rule);
    rule.core = second_core;
    rule.after_calls = second_after;
    plan.rules.push_back(rule);
    return plan;
  }

  // The kernel refuses the SO_ATTACH_REUSEPORT_CBPF attach outright.
  static FaultPlan RefuseCbpfAttach() {
    FaultPlan plan;
    FaultRule rule;
    rule.site = CallSite::kAttachFilter;
    rule.core = -1;
    rule.action = FaultAction::kErrno;
    rule.err = EPERM;
    rule.after_calls = 0;
    rule.count = UINT64_MAX;
    plan.rules.push_back(rule);
    return plan;
  }
};

}  // namespace fault
}  // namespace affinity

#endif  // AFFINITY_SRC_FAULT_FAULT_PLAN_H_
