// Reactor failure domains: per-core heartbeats and an alive/dead state word.
//
// Each reactor ticks its own heartbeat once per loop iteration (one relaxed
// store on a private cache line). Every reactor also runs a WatchdogMonitor
// over its peers' heartbeats, piggybacked on the same periodic tick as the
// FlowDirector's 100 ms epoch: a peer whose heartbeat has not advanced for
// the configured timeout is stalled or dead. Detection is cooperative --
// any peer may notice first -- but the alive->dead transition is a CAS, so
// exactly one reactor wins the right to run the failover actions (mark the
// victim permanently busy, migrate its flow groups, adopt its listen
// shard). Recovery is the mirror image: a stalled reactor that resumes sees
// its own state is kDead and CASes itself back, reversing the failover.
//
// This is deliberately NOT a consensus protocol: all reactors share one
// address space, so a single atomic word per core is ground truth. The
// failure model it covers is a wedged or dead *thread* (injected stalls and
// kills in CI; runaway handlers or lost threads in production), not a
// partitioned machine.

#ifndef AFFINITY_SRC_FAULT_FAILURE_DOMAIN_H_
#define AFFINITY_SRC_FAULT_FAILURE_DOMAIN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

namespace affinity {
namespace fault {

class FailureDomains {
 public:
  enum class CoreState : uint32_t { kAlive = 0, kDead = 1 };

  explicit FailureDomains(int num_cores)
      : num_cores_(num_cores < 1 ? 1 : num_cores),
        slots_(new Slot[static_cast<size_t>(num_cores_)]) {}

  int num_cores() const { return num_cores_; }

  // One loop iteration's "I am alive" tick; relaxed, core-private line.
  void Beat(int core) { slots_[core].beats.fetch_add(1, std::memory_order_relaxed); }

  uint64_t Beats(int core) const { return slots_[core].beats.load(std::memory_order_relaxed); }

  bool IsDead(int core) const {
    return slots_[core].state.load(std::memory_order_acquire) ==
           static_cast<uint32_t>(CoreState::kDead);
  }

  // Alive -> dead; true when this caller won the transition (and therefore
  // owns the failover actions). Callers serialize the actions themselves
  // (the runtime holds one failover mutex across transition + actions).
  bool MarkDead(int core) {
    uint32_t expected = static_cast<uint32_t>(CoreState::kAlive);
    return slots_[core].state.compare_exchange_strong(
        expected, static_cast<uint32_t>(CoreState::kDead), std::memory_order_acq_rel);
  }

  // Dead -> alive; true when this caller won the recovery.
  bool MarkAlive(int core) {
    uint32_t expected = static_cast<uint32_t>(CoreState::kDead);
    return slots_[core].state.compare_exchange_strong(
        expected, static_cast<uint32_t>(CoreState::kAlive), std::memory_order_acq_rel);
  }

  int dead_count() const {
    int count = 0;
    for (int c = 0; c < num_cores_; ++c) {
      if (IsDead(c)) ++count;
    }
    return count;
  }

 private:
  // 64-byte slot per core: heartbeat and state never false-share across
  // reactors.
  struct alignas(64) Slot {
    std::atomic<uint64_t> beats{0};
    std::atomic<uint32_t> state{0};
  };

  int num_cores_;
  std::unique_ptr<Slot[]> slots_;
};

// One reactor's private view of its peers' heartbeats. Scan() compares each
// peer's beat count against the last value this monitor saw and reports
// peers that have not advanced within the timeout. Monitors keep no shared
// state: several reactors may report the same stalled peer, and the
// FailureDomains CAS picks the single winner.
class WatchdogMonitor {
 public:
  using Clock = std::chrono::steady_clock;

  WatchdogMonitor(const FailureDomains* domains, int self, std::chrono::nanoseconds timeout)
      : domains_(domains),
        self_(self),
        timeout_(timeout),
        seen_(static_cast<size_t>(domains->num_cores())) {}

  // Appends to *stalled every peer (never self_) whose heartbeat has been
  // frozen for longer than the timeout. A stalled peer is reported on every
  // scan until its heartbeat moves again.
  void Scan(Clock::time_point now, std::vector<int>* stalled) {
    for (int core = 0; core < domains_->num_cores(); ++core) {
      if (core == self_) {
        continue;
      }
      Seen& seen = seen_[static_cast<size_t>(core)];
      uint64_t beats = domains_->Beats(core);
      if (!seen.initialized || beats != seen.beats) {
        seen.initialized = true;
        seen.beats = beats;
        seen.last_advance = now;
        continue;
      }
      if (now - seen.last_advance > timeout_) {
        stalled->push_back(core);
      }
    }
  }

 private:
  struct Seen {
    bool initialized = false;
    uint64_t beats = 0;
    Clock::time_point last_advance{};
  };

  const FailureDomains* domains_;
  int self_;
  std::chrono::nanoseconds timeout_;
  std::vector<Seen> seen_;
};

}  // namespace fault
}  // namespace affinity

#endif  // AFFINITY_SRC_FAULT_FAILURE_DOMAIN_H_
