// SysIface: the reactor's hot-path syscall surface, made substitutable.
//
// The runtime's failure story (watchdog, failover, shaped overload) is only
// testable if its failure triggers are reproducible. Real EMFILE storms,
// stalled cores, and flaky accept(2)s cannot be scheduled from a unit test,
// so every syscall the reactor's fate depends on -- accept4, epoll_wait,
// close, and the SO_ATTACH_REUSEPORT_CBPF attach -- is routed through this
// one-virtual-call-deep interface. The default implementation is a pure
// passthrough (DefaultSys(), a process-wide singleton with no state); chaos
// runs substitute fault::FaultInjector, which consults a seeded, per-core,
// per-call-site FaultPlan and is deterministic enough to replay in CI.
//
// Every method takes the calling reactor's core index first: the injector
// keys its schedules by (call site, core), and the passthrough ignores it.
// One virtual dispatch per syscall is noise next to the syscall itself
// (bench_rt_loopback's --baseline gate holds with the passthrough in place).

#ifndef AFFINITY_SRC_FAULT_SYS_IFACE_H_
#define AFFINITY_SRC_FAULT_SYS_IFACE_H_

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace affinity {
namespace fault {

class SysIface {
 public:
  // Sentinel EpollWait return: the plan scheduled a reactor death. The
  // reactor must exit Run() as if its thread had been lost -- the watchdog
  // and its peers take it from there. The passthrough never returns this.
  static constexpr int kKillReactor = -2;

  virtual ~SysIface() = default;

  virtual int Accept4(int core, int sockfd, sockaddr* addr, socklen_t* addrlen, int flags);
  virtual int EpollWait(int core, int epfd, epoll_event* events, int maxevents, int timeout_ms);
  // Always releases the fd, even when reporting an injected error -- chaos
  // runs must not leak descriptors.
  virtual int Close(int core, int fd);
  // The cBPF flow-director attach (steer::AttachReuseportProgram routes
  // here). Injected failure exercises the kFallback degradation path.
  virtual int AttachFilter(int core, int sockfd, int level, int optname, const void* optval,
                           socklen_t optlen);

  // The request/response data path (src/svc handlers) and the epoll
  // (re-)arming of held connections.
  virtual ssize_t Read(int core, int fd, void* buf, size_t count);
  virtual ssize_t Write(int core, int fd, const void* buf, size_t count);
  virtual int EpollCtl(int core, int epfd, int op, int fd, epoll_event* event);

  // The client side of the seam: rt::LoadClient routes its connect(2)
  // through here (with `core` = the client thread index), so chaos plans
  // can refuse or delay connections from the client's vantage too.
  virtual int Connect(int core, int sockfd, const sockaddr* addr, socklen_t addrlen);

  // The io_uring backend's enter(2) sites (src/io/uring_backend). Both
  // follow the family convention: the real call's return value, or -1 with
  // errno on failure.
  //
  // Non-blocking submission of `to_submit` staged SQEs (the mid-iteration
  // flush when completions are already pending).
  virtual int UringSubmit(int core, int ring_fd, unsigned to_submit);
  // Submit + wait in one enter(2): IORING_ENTER_GETEVENTS with an EXT_ARG
  // timeout. This is the uring reactor's blocking point -- the kUringWait
  // site carries the same kStall/kKill chaos semantics as kEpollWait,
  // including the kKillReactor sentinel.
  virtual int UringWait(int core, int ring_fd, unsigned to_submit, unsigned min_complete,
                        int timeout_ms);
};

// The shared passthrough instance; stateless, safe from every thread.
SysIface* DefaultSys();

}  // namespace fault
}  // namespace affinity

#endif  // AFFINITY_SRC_FAULT_SYS_IFACE_H_
