#include "src/fault/injector.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace affinity {
namespace fault {

namespace {

// SplitMix64 over (seed, site, core, call index): the per-call coin for
// probabilistic rules, independent of thread interleaving.
uint64_t MixHash(uint64_t seed, CallSite site, int core, uint64_t call_index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (call_index + 1) +
               (static_cast<uint64_t>(site) << 32) + static_cast<uint64_t>(core + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

size_t SlotOf(CallSite site, int core, int num_cores) {
  return static_cast<size_t>(site) * static_cast<size_t>(num_cores) + static_cast<size_t>(core);
}

}  // namespace

const char* CallSiteName(CallSite site) {
  switch (site) {
    case CallSite::kAccept4:
      return "accept4";
    case CallSite::kEpollWait:
      return "epoll_wait";
    case CallSite::kClose:
      return "close";
    case CallSite::kAttachFilter:
      return "attach_filter";
    case CallSite::kRead:
      return "read";
    case CallSite::kWrite:
      return "write";
    case CallSite::kEpollCtl:
      return "epoll_ctl";
    case CallSite::kConnect:
      return "connect";
    case CallSite::kUringSubmit:
      return "uring_submit";
    case CallSite::kUringWait:
      return "uring_wait";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultPlan& plan, int num_cores, SysIface* real)
    : plan_(plan),
      num_cores_(num_cores < 1 ? 1 : num_cores),
      real_(real),
      calls_(new std::atomic<uint64_t>[kNumCallSites * static_cast<size_t>(num_cores_)]),
      injected_(new std::atomic<uint64_t>[kNumCallSites * static_cast<size_t>(num_cores_)]),
      killed_(new std::atomic<bool>[static_cast<size_t>(num_cores_)]) {
  for (size_t i = 0; i < kNumCallSites * static_cast<size_t>(num_cores_); ++i) {
    calls_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
  }
  for (int c = 0; c < num_cores_; ++c) {
    killed_[c].store(false, std::memory_order_relaxed);
  }
}

FaultInjector::~FaultInjector() = default;

const FaultRule* FaultInjector::Match(CallSite site, int core) {
  if (core < 0 || core >= num_cores_) {
    return nullptr;
  }
  uint64_t index =
      calls_[SlotOf(site, core, num_cores_)].fetch_add(1, std::memory_order_relaxed);
  for (const FaultRule& rule : plan_.rules) {
    if (rule.site != site || (rule.core != -1 && rule.core != core)) {
      continue;
    }
    if (index < rule.after_calls || index - rule.after_calls >= rule.count) {
      continue;
    }
    if (rule.probability < 1.0) {
      double coin = static_cast<double>(MixHash(plan_.seed, site, core, index) >> 11) *
                    (1.0 / 9007199254740992.0);  // uniform [0, 1)
      if (coin >= rule.probability) {
        continue;
      }
    }
    return &rule;
  }
  return nullptr;
}

void FaultInjector::NoteInjected(CallSite site, int core) {
  injected_[SlotOf(site, core, num_cores_)].fetch_add(1, std::memory_order_relaxed);
  if (on_inject_) {
    on_inject_(site, core);
  }
}

void FaultInjector::SleepFor(uint64_t duration_us) const {
  // 1 ms slices so a stalled reactor still honors Stop() promptly.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(duration_us);
  while (std::chrono::steady_clock::now() < deadline) {
    if (stop_ != nullptr && stop_->load(std::memory_order_acquire)) {
      return;
    }
    auto remaining = deadline - std::chrono::steady_clock::now();
    auto slice = std::min<std::chrono::steady_clock::duration>(remaining,
                                                               std::chrono::milliseconds(1));
    if (slice.count() > 0) {
      std::this_thread::sleep_for(slice);
    }
  }
}

int FaultInjector::Accept4(int core, int sockfd, sockaddr* addr, socklen_t* addrlen, int flags) {
  const FaultRule* rule = Match(CallSite::kAccept4, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kAccept4, core);
    if (rule->action == FaultAction::kErrno) {
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->Accept4(core, sockfd, addr, addrlen, flags);
}

int FaultInjector::EpollWait(int core, int epfd, epoll_event* events, int maxevents,
                             int timeout_ms) {
  if (core >= 0 && core < num_cores_ && killed_[core].load(std::memory_order_relaxed)) {
    return kKillReactor;
  }
  const FaultRule* rule = Match(CallSite::kEpollWait, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kEpollWait, core);
    switch (rule->action) {
      case FaultAction::kErrno:
        errno = rule->err;
        return -1;
      case FaultAction::kDelay:
      case FaultAction::kStall:
        SleepFor(rule->duration_us);
        break;
      case FaultAction::kKill:
        killed_[core].store(true, std::memory_order_relaxed);
        return kKillReactor;
    }
  }
  return real_->EpollWait(core, epfd, events, maxevents, timeout_ms);
}

int FaultInjector::Close(int core, int fd) {
  const FaultRule* rule = Match(CallSite::kClose, core);
  if (rule == nullptr) {
    return real_->Close(core, fd);
  }
  NoteInjected(CallSite::kClose, core);
  if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
    SleepFor(rule->duration_us);
    return real_->Close(core, fd);
  }
  // kErrno: report the failure but still release the descriptor -- a chaos
  // run that leaked one fd per injection would turn into an EMFILE test of
  // its own.
  real_->Close(core, fd);
  errno = rule->err;
  return -1;
}

int FaultInjector::AttachFilter(int core, int sockfd, int level, int optname, const void* optval,
                                socklen_t optlen) {
  const FaultRule* rule = Match(CallSite::kAttachFilter, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kAttachFilter, core);
    if (rule->action == FaultAction::kErrno) {
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->AttachFilter(core, sockfd, level, optname, optval, optlen);
}

ssize_t FaultInjector::Read(int core, int fd, void* buf, size_t count) {
  const FaultRule* rule = Match(CallSite::kRead, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kRead, core);
    if (rule->action == FaultAction::kErrno) {
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->Read(core, fd, buf, count);
}

ssize_t FaultInjector::Write(int core, int fd, const void* buf, size_t count) {
  const FaultRule* rule = Match(CallSite::kWrite, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kWrite, core);
    if (rule->action == FaultAction::kErrno) {
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->Write(core, fd, buf, count);
}

int FaultInjector::EpollCtl(int core, int epfd, int op, int fd, epoll_event* event) {
  const FaultRule* rule = Match(CallSite::kEpollCtl, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kEpollCtl, core);
    if (rule->action == FaultAction::kErrno) {
      // Fail WITHOUT performing the arm: the reactor must dispose of the
      // connection instead of waiting on an event that can never fire.
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->EpollCtl(core, epfd, op, fd, event);
}

int FaultInjector::Connect(int core, int sockfd, const sockaddr* addr, socklen_t addrlen) {
  const FaultRule* rule = Match(CallSite::kConnect, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kConnect, core);
    if (rule->action == FaultAction::kErrno) {
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->Connect(core, sockfd, addr, addrlen);
}

int FaultInjector::UringSubmit(int core, int ring_fd, unsigned to_submit) {
  const FaultRule* rule = Match(CallSite::kUringSubmit, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kUringSubmit, core);
    if (rule->action == FaultAction::kErrno) {
      // Fail WITHOUT entering: the SQEs stay staged in the ring, so the
      // fault costs the batch one iteration of latency, never an op.
      errno = rule->err;
      return -1;
    }
    if (rule->action == FaultAction::kDelay || rule->action == FaultAction::kStall) {
      SleepFor(rule->duration_us);
    }
  }
  return real_->UringSubmit(core, ring_fd, to_submit);
}

int FaultInjector::UringWait(int core, int ring_fd, unsigned to_submit, unsigned min_complete,
                             int timeout_ms) {
  if (core >= 0 && core < num_cores_ && killed_[core].load(std::memory_order_relaxed)) {
    return kKillReactor;
  }
  const FaultRule* rule = Match(CallSite::kUringWait, core);
  if (rule != nullptr) {
    NoteInjected(CallSite::kUringWait, core);
    switch (rule->action) {
      case FaultAction::kErrno:
        errno = rule->err;
        return -1;
      case FaultAction::kDelay:
      case FaultAction::kStall:
        SleepFor(rule->duration_us);
        break;
      case FaultAction::kKill:
        killed_[core].store(true, std::memory_order_relaxed);
        return kKillReactor;
    }
  }
  return real_->UringWait(core, ring_fd, to_submit, min_complete, timeout_ms);
}

InjectorStats FaultInjector::Stats() const {
  InjectorStats stats;
  for (int site = 0; site < kNumCallSites; ++site) {
    for (int core = 0; core < num_cores_; ++core) {
      stats.injected[site] +=
          injected_[SlotOf(static_cast<CallSite>(site), core, num_cores_)].load(
              std::memory_order_relaxed);
    }
  }
  return stats;
}

uint64_t FaultInjector::calls(CallSite site, int core) const {
  if (core < 0 || core >= num_cores_) {
    return 0;
  }
  return calls_[SlotOf(site, core, num_cores_)].load(std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace affinity
