#include "src/fault/sys_iface.h"

#include <unistd.h>

namespace affinity {
namespace fault {

int SysIface::Accept4(int core, int sockfd, sockaddr* addr, socklen_t* addrlen, int flags) {
  (void)core;
  return accept4(sockfd, addr, addrlen, flags);
}

int SysIface::EpollWait(int core, int epfd, epoll_event* events, int maxevents, int timeout_ms) {
  (void)core;
  return epoll_wait(epfd, events, maxevents, timeout_ms);
}

int SysIface::Close(int core, int fd) {
  (void)core;
  return close(fd);
}

int SysIface::AttachFilter(int core, int sockfd, int level, int optname, const void* optval,
                           socklen_t optlen) {
  (void)core;
  return setsockopt(sockfd, level, optname, optval, optlen);
}

SysIface* DefaultSys() {
  static SysIface passthrough;
  return &passthrough;
}

}  // namespace fault
}  // namespace affinity
