#include "src/fault/sys_iface.h"

#include <unistd.h>

namespace affinity {
namespace fault {

int SysIface::Accept4(int core, int sockfd, sockaddr* addr, socklen_t* addrlen, int flags) {
  (void)core;
  return accept4(sockfd, addr, addrlen, flags);
}

int SysIface::EpollWait(int core, int epfd, epoll_event* events, int maxevents, int timeout_ms) {
  (void)core;
  return epoll_wait(epfd, events, maxevents, timeout_ms);
}

int SysIface::Close(int core, int fd) {
  (void)core;
  return close(fd);
}

int SysIface::AttachFilter(int core, int sockfd, int level, int optname, const void* optval,
                           socklen_t optlen) {
  (void)core;
  return setsockopt(sockfd, level, optname, optval, optlen);
}

ssize_t SysIface::Read(int core, int fd, void* buf, size_t count) {
  (void)core;
  return read(fd, buf, count);
}

ssize_t SysIface::Write(int core, int fd, const void* buf, size_t count) {
  (void)core;
  // Every Write site is a socket; MSG_NOSIGNAL turns the peer-reset SIGPIPE
  // into a plain EPIPE the handler state machine can classify.
  return send(fd, buf, count, MSG_NOSIGNAL);
}

int SysIface::EpollCtl(int core, int epfd, int op, int fd, epoll_event* event) {
  (void)core;
  return epoll_ctl(epfd, op, fd, event);
}

int SysIface::Connect(int core, int sockfd, const sockaddr* addr, socklen_t addrlen) {
  (void)core;
  return connect(sockfd, addr, addrlen);
}

SysIface* DefaultSys() {
  static SysIface passthrough;
  return &passthrough;
}

}  // namespace fault
}  // namespace affinity
