#include "src/fault/sys_iface.h"

#include <linux/io_uring.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

namespace affinity {
namespace fault {

int SysIface::Accept4(int core, int sockfd, sockaddr* addr, socklen_t* addrlen, int flags) {
  (void)core;
  return accept4(sockfd, addr, addrlen, flags);
}

int SysIface::EpollWait(int core, int epfd, epoll_event* events, int maxevents, int timeout_ms) {
  (void)core;
  return epoll_wait(epfd, events, maxevents, timeout_ms);
}

int SysIface::Close(int core, int fd) {
  (void)core;
  return close(fd);
}

int SysIface::AttachFilter(int core, int sockfd, int level, int optname, const void* optval,
                           socklen_t optlen) {
  (void)core;
  return setsockopt(sockfd, level, optname, optval, optlen);
}

ssize_t SysIface::Read(int core, int fd, void* buf, size_t count) {
  (void)core;
  return read(fd, buf, count);
}

ssize_t SysIface::Write(int core, int fd, const void* buf, size_t count) {
  (void)core;
  // Every Write site is a socket; MSG_NOSIGNAL turns the peer-reset SIGPIPE
  // into a plain EPIPE the handler state machine can classify.
  return send(fd, buf, count, MSG_NOSIGNAL);
}

int SysIface::EpollCtl(int core, int epfd, int op, int fd, epoll_event* event) {
  (void)core;
  return epoll_ctl(epfd, op, fd, event);
}

int SysIface::Connect(int core, int sockfd, const sockaddr* addr, socklen_t addrlen) {
  (void)core;
  return connect(sockfd, addr, addrlen);
}

int SysIface::UringSubmit(int core, int ring_fd, unsigned to_submit) {
  (void)core;
  return static_cast<int>(
      syscall(__NR_io_uring_enter, ring_fd, to_submit, 0u, 0u, nullptr, 0u));
}

int SysIface::UringWait(int core, int ring_fd, unsigned to_submit, unsigned min_complete,
                        int timeout_ms) {
  (void)core;
  io_uring_getevents_arg arg;
  std::memset(&arg, 0, sizeof(arg));
  __kernel_timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000ll;
  arg.ts = reinterpret_cast<uint64_t>(&ts);
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete,
                                  IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
                                  sizeof(arg)));
}

SysIface* DefaultSys() {
  static SysIface passthrough;
  return &passthrough;
}

}  // namespace fault
}  // namespace affinity
