// TokenBucket: the per-core drop budget behind shaped overload.
//
// The paper's Section 3.3 bounded-queue argument assumes overload is shed,
// not convoyed; ROADMAP's backpressure study asks what the shedding should
// look like. This bucket rates the "accept-then-RST" half of the admission
// policy: each RST disposition spends one token, tokens refill at
// `rate_per_sec`, and the bucket holds at most one second of budget. When
// the bucket is dry the reactor stops RSTing and pushes back into the
// kernel backlog instead, so a drop storm degrades into bounded queueing
// rather than an RST flood.
//
// Single-threaded by design: each reactor owns one bucket. Time is passed
// in (the reactor already reads the clock once per loop), which also makes
// the refill math unit-testable without sleeping.

#ifndef AFFINITY_SRC_FAULT_TOKEN_BUCKET_H_
#define AFFINITY_SRC_FAULT_TOKEN_BUCKET_H_

#include <chrono>
#include <cstdint>

namespace affinity {
namespace fault {

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  // rate_per_sec <= 0 builds an unlimited bucket (TryTake always true).
  TokenBucket(int64_t rate_per_sec, Clock::time_point now)
      : rate_per_sec_(rate_per_sec), tokens_(rate_per_sec > 0 ? rate_per_sec : 0), last_(now) {}

  bool unlimited() const { return rate_per_sec_ <= 0; }

  // Spends one token if available. Refills lazily from elapsed time.
  bool TryTake(Clock::time_point now) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    if (tokens_ < 1) {
      return false;
    }
    tokens_ -= 1;
    return true;
  }

  // Whole tokens currently available (after a refill at `now`).
  int64_t available(Clock::time_point now) {
    if (unlimited()) {
      return INT64_MAX;
    }
    Refill(now);
    return tokens_;
  }

 private:
  void Refill(Clock::time_point now) {
    if (now <= last_) {
      return;
    }
    auto elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_).count();
    // Integer refill: carry the remainder by only advancing last_ by the
    // time actually converted into tokens.
    int64_t earned = elapsed_ns * rate_per_sec_ / 1000000000ll;
    if (earned <= 0) {
      return;
    }
    last_ += std::chrono::nanoseconds(earned * 1000000000ll / rate_per_sec_);
    tokens_ = tokens_ + earned > rate_per_sec_ ? rate_per_sec_ : tokens_ + earned;
  }

  int64_t rate_per_sec_;
  int64_t tokens_;
  Clock::time_point last_;
};

}  // namespace fault
}  // namespace affinity

#endif  // AFFINITY_SRC_FAULT_TOKEN_BUCKET_H_
