// Catalogue of modern (2012) 10 GbE NIC capabilities — paper Table 5.
//
// "Each card offers either a small number of DMA rings, RSS supported DMA
//  rings, or flow steering entries." The catalogue backs the Table-5 bench
//  and lets experiments instantiate SimNic configs matching other vendors.

#ifndef AFFINITY_SRC_HW_NIC_CATALOGUE_H_
#define AFFINITY_SRC_HW_NIC_CATALOGUE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/hw/nic.h"

namespace affinity {

struct NicModel {
  std::string vendor;
  std::string reference;
  int hw_dma_rings = 0;
  int rss_dma_rings = 0;
  // Flow-steering table capacity in connections; nullopt when the datasheet
  // does not say (Table 5 prints "-").
  std::optional<int> flow_steering_entries;
  // Free-text capacity note (e.g. Chelsio's "tens of thousands").
  std::string capacity_note;

  // SimNic configuration approximating this card.
  NicConfig ToConfig() const;
};

// The four rows of Table 5: Intel 82599, Chelsio Terminator 4, Solarflare,
// Myricom.
const std::vector<NicModel>& NicCatalogue();

// Looks a model up by vendor name; nullptr if absent.
const NicModel* FindNicModel(const std::string& vendor);

}  // namespace affinity

#endif  // AFFINITY_SRC_HW_NIC_CATALOGUE_H_
