#include "src/hw/nic_catalogue.h"

namespace affinity {

NicConfig NicModel::ToConfig() const {
  NicConfig config;
  config.num_rings = hw_dma_rings;
  config.fdir_capacity =
      flow_steering_entries.has_value() ? static_cast<size_t>(*flow_steering_entries) : 0;
  return config;
}

const std::vector<NicModel>& NicCatalogue() {
  static const std::vector<NicModel> kCatalogue = {
      {"Intel", "82599 10 GbE Controller Datasheet", 64, 16, 32 * 1024, "32K"},
      {"Chelsio", "Terminator 4 ASIC white paper", 64, 64, std::nullopt,
       "\"tens of thousands\""},
      {"Solarflare", "Linux 3.2.2 sfc driver", 32, 32, 8 * 1024, "8K"},
      {"Myricom", "Linux 3.2.2 myri10ge driver", 32, 32, std::nullopt, "-"},
  };
  return kCatalogue;
}

const NicModel* FindNicModel(const std::string& vendor) {
  for (const NicModel& model : NicCatalogue()) {
    if (model.vendor == vendor) {
      return &model;
    }
  }
  return nullptr;
}

}  // namespace affinity
