#include "src/hw/nic.h"

#include <algorithm>
#include <cassert>

namespace affinity {

SimNic::SimNic(const NicConfig& config, EventLoop* loop)
    : config_(config),
      loop_(loop),
      fdir_(config.fdir_capacity),
      rx_rings_(static_cast<size_t>(config.num_rings)),
      rx_port_free_(static_cast<size_t>(config.num_ports), 0),
      tx_port_free_(static_cast<size_t>(config.num_ports), 0),
      group_ring_(config.num_flow_groups, 0) {
  assert(config.num_rings >= 1);
  assert(config.num_ports >= 1);
  assert((config.num_flow_groups & (config.num_flow_groups - 1)) == 0);
  rss_.DistributeRoundRobin(config.num_rings);
}

int SimNic::PortOfRing(int ring) const {
  // Rings are spread evenly over ports (64 rings per port on the real card;
  // here just a proportional split so any ring count works).
  return ring * config_.num_ports / config_.num_rings;
}

Cycles SimNic::WireTime(uint32_t bytes) const {
  double by_bandwidth = static_cast<double>(bytes) * 8.0 / (config_.port_gbps * 1e9);
  double by_pps = 1.0 / config_.port_max_pps;
  return SecToCycles(std::max(by_bandwidth, by_pps));
}

int SimNic::SteerOf(const FiveTuple& flow) {
  switch (config_.mode) {
    case SteeringMode::kRssOnly:
      return std::min(rss_.Lookup(FlowHash(flow)), config_.num_rings - 1);
    case SteeringMode::kFlowGroups: {
      uint32_t group = FlowGroupOf(flow, config_.num_flow_groups);
      std::optional<int> ring = fdir_.Lookup(GroupKey(group));
      if (ring.has_value()) {
        return *ring;
      }
      ++stats_.rss_fallbacks;
      return std::min(rss_.Lookup(FlowHash(flow)), config_.num_rings - 1);
    }
    case SteeringMode::kPerFlowFdir: {
      std::optional<int> ring = fdir_.Lookup(FlowHash(flow));
      if (ring.has_value()) {
        return *ring;
      }
      ++stats_.rss_fallbacks;
      return std::min(rss_.Lookup(FlowHash(flow)), config_.num_rings - 1);
    }
  }
  return 0;
}

void SimNic::PushToRing(int ring, const Packet& packet) {
  std::deque<Packet>& queue = rx_rings_[static_cast<size_t>(ring)];
  if (queue.size() >= config_.ring_capacity) {
    ++stats_.rx_dropped_ring_full;
    return;
  }
  queue.push_back(packet);
  ++stats_.rx_packets;
  stats_.rx_bytes += packet.wire_bytes;
  if (queue.size() == 1 && on_rx_) {
    on_rx_(ring);
  }
}

void SimNic::DeliverFromWire(const Packet& packet) {
  Cycles now = loop_->Now();

  // Packets that arrive while an FDir flush is in progress are missed by the
  // card (Section 7.1: "the NIC misses many incoming packets when running in
  // this mode").
  if (now < tx_halted_until_ && config_.mode == SteeringMode::kPerFlowFdir) {
    ++stats_.rx_dropped_flush;
    return;
  }

  int ring = SteerOf(packet.flow);
  int port = PortOfRing(ring);

  // Port pacing: the packet occupies the RX direction of its port. If the
  // backlog exceeds the card's buffering, it is dropped.
  Cycles ready = std::max(now, rx_port_free_[static_cast<size_t>(port)]);
  if (ready - now > config_.max_rx_queue_delay) {
    ++stats_.rx_dropped_overload;
    return;
  }
  Cycles done = ready + WireTime(packet.wire_bytes);
  rx_port_free_[static_cast<size_t>(port)] = done;

  if (done == now) {
    PushToRing(ring, packet);
  } else {
    Packet copy = packet;
    loop_->ScheduleAt(done, [this, ring, copy] { PushToRing(ring, copy); });
  }
}

std::optional<Packet> SimNic::PopRx(int ring) {
  std::deque<Packet>& queue = rx_rings_[static_cast<size_t>(ring)];
  if (queue.empty()) {
    return std::nullopt;
  }
  Packet packet = queue.front();
  queue.pop_front();
  return packet;
}

void SimNic::Transmit(int ring, const Packet& packet) {
  Cycles now = loop_->Now();
  int port = PortOfRing(ring);

  // TX halts while an FDir flush runs (Section 7.1: "The driver halts packet
  // transmissions for the duration of the flush.").
  Cycles start = std::max({now, tx_port_free_[static_cast<size_t>(port)], tx_halted_until_});
  Cycles done = start + WireTime(packet.wire_bytes);
  tx_port_free_[static_cast<size_t>(port)] = done;

  ++stats_.tx_packets;
  stats_.tx_bytes += packet.wire_bytes;

  Packet copy = packet;
  loop_->ScheduleAt(done, [this, copy] {
    if (on_tx_) {
      on_tx_(copy);
    }
  });
}

Cycles SimNic::InsertOrFlush(uint32_t key, int ring) {
  Cycles cost = FdirTable::kInsertCost;
  if (!fdir_.Insert(key, ring)) {
    // Table full: schedule + run a flush, halting TX; then retry the insert.
    // The driver cannot remove individual entries, so an undersized table
    // keeps cycling through full flushes (Section 7.1).
    cost += FdirTable::kFlushScheduleCost + FdirTable::kFlushCost;
    tx_halted_until_ = std::max(tx_halted_until_, loop_->Now() + FdirTable::kFlushScheduleCost +
                                                      FdirTable::kFlushCost);
    fdir_.Flush();
    bool ok = fdir_.Insert(key, ring);
    assert(ok && "FDir insert must succeed right after a flush");
  }
  return cost;
}

Cycles SimNic::ProgramFlowGroupsRoundRobin() {
  config_.mode = SteeringMode::kFlowGroups;
  Cycles cost = 0;
  for (uint32_t group = 0; group < config_.num_flow_groups; ++group) {
    int ring = static_cast<int>(group % static_cast<uint32_t>(config_.num_rings));
    // A table smaller than the flow-group count cannot hold every group at
    // once; earlier entries are lost to flushes and those groups fall back to
    // RSS until re-steered. The driver's shadow copy keeps the intent.
    cost += InsertOrFlush(GroupKey(group), ring);
    group_ring_[group] = ring;
  }
  return cost;
}

Cycles SimNic::MigrateFlowGroup(uint32_t group, int ring) {
  assert(group < config_.num_flow_groups);
  assert(ring >= 0 && ring < config_.num_rings);
  Cycles cost = InsertOrFlush(GroupKey(group), ring);
  group_ring_[group] = ring;
  return cost;
}

Cycles SimNic::SteerFlow(const FiveTuple& flow, int ring) {
  return InsertOrFlush(FlowHash(flow), ring);
}

int SimNic::RingOfFlowGroup(uint32_t group) const {
  assert(group < config_.num_flow_groups);
  return group_ring_[group];
}

}  // namespace affinity
