#include "src/hw/rss.h"

#include <algorithm>

namespace affinity {

RssTable::RssTable() { table_.fill(0); }

bool RssTable::SetEntry(int index, int ring) {
  if (index < 0 || index >= kEntries || ring < 0 || ring >= kMaxRings) {
    return false;
  }
  table_[static_cast<size_t>(index)] = static_cast<uint8_t>(ring);
  return true;
}

int RssTable::Lookup(uint32_t flow_hash) const {
  return table_[flow_hash % kEntries];
}

void RssTable::DistributeRoundRobin(int num_rings) {
  int rings = std::clamp(num_rings, 1, kMaxRings);
  for (int i = 0; i < kEntries; ++i) {
    table_[static_cast<size_t>(i)] = static_cast<uint8_t>(i % rings);
  }
}

}  // namespace affinity
