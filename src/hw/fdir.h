// Flow Direction (FDir) flow-steering table (paper Sections 3.1 and 7.1).
//
// FDir maps a flow hash to one of 64 RX DMA rings via a hash table held in
// NIC memory. The table is capacity-bounded (8K-32K entries depending on how
// much NIC memory the FIFOs leave free). The kernel programs it with special
// requests that are *expensive*:
//   - inserting an entry costs ~10,000 cycles on the driving core, of which
//     ~600 cycles is the actual table write (the rest is computing the
//     signature hash),
//   - the driver cannot remove individual entries, so when the table fills it
//     schedules a full flush: ~80,000 cycles to get the flush work scheduled
//     plus ~70,000 cycles of flush during which the NIC halts transmissions
//     and misses incoming packets.
// Affinity-Accept sidesteps all of this by inserting one entry per *flow
// group* (4,096 of them) up front; Twenty-Policy (Section 7.1) hits all of it.

#ifndef AFFINITY_SRC_HW_FDIR_H_
#define AFFINITY_SRC_HW_FDIR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/sim/time.h"

namespace affinity {

struct FdirStats {
  uint64_t inserts = 0;
  uint64_t updates = 0;        // insert over an existing key
  uint64_t rejected_full = 0;  // insert refused because the table was full
  uint64_t flushes = 0;
  uint64_t lookups = 0;
  uint64_t hits = 0;
};

class FdirTable {
 public:
  // Cost constants from Section 7.1 (2.4 GHz cycles).
  static constexpr Cycles kInsertCost = 10000;       // signature hash + command
  static constexpr Cycles kTableWriteCost = 600;     // the table write itself
  static constexpr Cycles kFlushScheduleCost = 80000;  // get the flush scheduled
  static constexpr Cycles kFlushCost = 70000;          // flush; TX halted meanwhile

  static constexpr int kMaxRings = 64;  // 6-bit ring identifiers

  explicit FdirTable(size_t capacity = 32 * 1024);

  // Programs `flow_hash -> ring`. Returns false if the table is full and the
  // key is new (the caller must Flush() first, as the real driver does).
  bool Insert(uint32_t flow_hash, int ring);

  // Ring for the flow hash, or nullopt on miss (packet falls back to RSS).
  std::optional<int> Lookup(uint32_t flow_hash);

  // Drops every entry.
  void Flush();

  bool Full() const { return table_.size() >= capacity_; }
  size_t size() const { return table_.size(); }
  size_t capacity() const { return capacity_; }
  const FdirStats& stats() const { return stats_; }

 private:
  size_t capacity_;
  std::unordered_map<uint32_t, int> table_;
  FdirStats stats_;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_HW_FDIR_H_
