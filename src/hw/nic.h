// Simulated multi-queue 10 GbE NIC (Intel 82599 "IXGBE" model).
//
// Models the parts of the card the paper depends on:
//  - per-core RX/TX DMA rings (up to 64 per port; a second port adds 64 more,
//    as on the Intel machine for >64-core runs),
//  - RSS (128-entry, 16-ring indirection) and FDir (bounded flow-steering
//    hash table) steering, with Affinity-Accept's flow-group mode,
//  - port capacity: bytes/sec line rate plus a packets/sec ceiling, which is
//    what saturates first for small files (Figures 3 and 9),
//  - FDir reprogramming and flush costs, including the TX halt + RX misses
//    during a flush that cripple Twenty-Policy (Section 7.1).

#ifndef AFFINITY_SRC_HW_NIC_H_
#define AFFINITY_SRC_HW_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "src/hw/fdir.h"
#include "src/hw/rss.h"
#include "src/net/flow.h"
#include "src/net/packet.h"
#include "src/sim/event_loop.h"
#include "src/sim/time.h"

namespace affinity {

// How the NIC picks an RX ring for an incoming packet.
enum class SteeringMode {
  kRssOnly,      // hash(5-tuple) -> RSS indirection table (max 16 rings)
  kFlowGroups,   // Affinity-Accept: hash(low port bits) -> FDir flow groups
  kPerFlowFdir,  // Twenty-Policy / aRFS style: per-connection FDir entries
};

struct NicConfig {
  int num_rings = 1;      // one RX+TX ring pair per core in all experiments
  int num_ports = 1;      // 10 GbE ports; the Intel machine uses 2 above 64 cores
  double port_gbps = 10.0;
  double port_max_pps = 3.2e6;  // per-port, per-direction packet ceiling
  size_t ring_capacity = 512;   // RX descriptors per ring
  size_t fdir_capacity = 32 * 1024;
  uint32_t num_flow_groups = 4096;  // power of two (Section 3.1)
  SteeringMode mode = SteeringMode::kFlowGroups;
  // RX packets that would wait longer than this for port service are dropped
  // (the card has bounded buffering).
  Cycles max_rx_queue_delay = MsToCycles(2.0);
};

struct NicStats {
  uint64_t rx_packets = 0;
  uint64_t tx_packets = 0;
  uint64_t rx_bytes = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_dropped_ring_full = 0;
  uint64_t rx_dropped_overload = 0;  // port pps/bandwidth exceeded
  uint64_t rx_dropped_flush = 0;     // lost while an FDir flush was running
  uint64_t rss_fallbacks = 0;        // FDir miss -> RSS steering
};

class SimNic {
 public:
  // on_rx_ring_nonempty(ring): raised when a packet lands in an empty ring
  // (the interrupt that kicks the ring's core).
  // on_wire_tx(packet): the packet reached the wire towards the client.
  using RxInterruptHandler = std::function<void(int ring)>;
  using WireTxHandler = std::function<void(const Packet&)>;

  SimNic(const NicConfig& config, EventLoop* loop);

  void set_rx_interrupt_handler(RxInterruptHandler handler) { on_rx_ = std::move(handler); }
  void set_wire_tx_handler(WireTxHandler handler) { on_tx_ = std::move(handler); }

  // --- wire side (called by the simulated clients) ---

  // A packet arrives from the switch. Applies port pacing, steering, ring
  // capacity; may drop.
  void DeliverFromWire(const Packet& packet);

  // --- host side (called by the simulated kernel) ---

  // Packets waiting in an RX ring.
  size_t RxPending(int ring) const { return rx_rings_[static_cast<size_t>(ring)].size(); }
  // Pops the next packet from `ring`; nullopt if empty.
  std::optional<Packet> PopRx(int ring);

  // Queues a packet for transmission on `ring`'s TX queue. Serializes through
  // the ring's port; delivery to the wire is scheduled on the event loop.
  void Transmit(int ring, const Packet& packet);

  // --- steering control (driver operations; return cycles charged to the
  //     calling core) ---

  // Affinity-Accept setup: map all flow groups round-robin over rings and
  // switch to kFlowGroups mode. If the FDir table is smaller than the group
  // count the driver flush path runs (fdir().stats().flushes counts them)
  // and only the most recent groups stay resident.
  Cycles ProgramFlowGroupsRoundRobin();

  // Moves one flow group to a new ring (flow-group migration, Section 3.3.2).
  Cycles MigrateFlowGroup(uint32_t group, int ring);

  // Twenty-Policy: steer one specific connection to `ring`. If the table is
  // full this triggers the flush path (TX halt + RX misses).
  Cycles SteerFlow(const FiveTuple& flow, int ring);

  // Ring currently serving a flow group.
  int RingOfFlowGroup(uint32_t group) const;

  // Ring an incoming packet with this tuple would be steered to right now.
  int SteerOf(const FiveTuple& flow);

  const NicConfig& config() const { return config_; }
  const NicStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NicStats{}; }
  const FdirTable& fdir() const { return fdir_; }
  RssTable& rss() { return rss_; }
  Cycles tx_halted_until() const { return tx_halted_until_; }

 private:
  // Programs `key -> ring`, running the flush path (TX halt, table clear)
  // first when the table is full. Returns the cycles charged to the driver.
  Cycles InsertOrFlush(uint32_t key, int ring);

  int PortOfRing(int ring) const;
  // Serialization time of a packet through one port direction.
  Cycles WireTime(uint32_t bytes) const;
  // Hash key used for FDir in flow-group mode: the group id itself.
  static uint32_t GroupKey(uint32_t group) { return group; }

  void PushToRing(int ring, const Packet& packet);

  NicConfig config_;
  EventLoop* loop_;
  RssTable rss_;
  FdirTable fdir_;
  std::vector<std::deque<Packet>> rx_rings_;
  std::vector<Cycles> rx_port_free_;  // per-port RX serialization horizon
  std::vector<Cycles> tx_port_free_;  // per-port TX serialization horizon
  std::vector<int> group_ring_;       // flow group -> ring (driver's shadow copy)
  Cycles tx_halted_until_ = 0;
  RxInterruptHandler on_rx_;
  WireTxHandler on_tx_;
  NicStats stats_;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_HW_NIC_H_
