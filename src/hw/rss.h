// Receive-Side Scaling indirection table (paper Section 3.1).
//
// "RSS uses the flow hash value to index a 128-entry table. Each entry in the
//  table is a 4-bit identifier for an RX DMA ring" -- so RSS on the IXGBE can
//  only spread load over 16 rings, one of the limitations that motivates the
//  FDir-based flow-group design.

#ifndef AFFINITY_SRC_HW_RSS_H_
#define AFFINITY_SRC_HW_RSS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace affinity {

class RssTable {
 public:
  static constexpr int kEntries = 128;
  static constexpr int kMaxRings = 16;  // 4-bit ring identifiers

  RssTable();

  // Programs entry `index` (0..127) to point at `ring` (0..15).
  // Returns false (and leaves the entry unchanged) if out of range.
  bool SetEntry(int index, int ring);

  // Ring for a given flow hash: table[hash % 128].
  int Lookup(uint32_t flow_hash) const;

  // Default driver configuration: round-robin the 128 entries over
  // min(num_rings, 16) rings.
  void DistributeRoundRobin(int num_rings);

  int entry(int index) const { return table_[static_cast<size_t>(index)]; }

 private:
  std::array<uint8_t, kEntries> table_;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_HW_RSS_H_
