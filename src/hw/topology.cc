#include "src/hw/topology.h"

namespace affinity {

MachineSpec Amd48() {
  MachineSpec spec;
  spec.name = "AMD48";
  spec.num_chips = 8;
  spec.cores_per_chip = 6;
  spec.memory = AmdMemoryProfile();
  spec.l1_bytes = 64 * 1024;
  spec.l2_bytes = 512 * 1024;
  spec.l3_bytes = 5 * 1024 * 1024;  // 6 MB minus 1 MB HT Assist probe filter
  return spec;
}

MachineSpec Intel80() {
  MachineSpec spec;
  spec.name = "Intel80";
  spec.num_chips = 8;
  spec.cores_per_chip = 10;
  spec.memory = IntelMemoryProfile();
  spec.l1_bytes = 32 * 1024;
  spec.l2_bytes = 256 * 1024;
  spec.l3_bytes = 30 * 1024 * 1024;
  return spec;
}

}  // namespace affinity
