#include "src/hw/fdir.h"

namespace affinity {

FdirTable::FdirTable(size_t capacity) : capacity_(capacity) {}

bool FdirTable::Insert(uint32_t flow_hash, int ring) {
  auto it = table_.find(flow_hash);
  if (it != table_.end()) {
    it->second = ring;
    ++stats_.updates;
    return true;
  }
  if (table_.size() >= capacity_) {
    ++stats_.rejected_full;
    return false;
  }
  table_.emplace(flow_hash, ring);
  ++stats_.inserts;
  return true;
}

std::optional<int> FdirTable::Lookup(uint32_t flow_hash) {
  ++stats_.lookups;
  auto it = table_.find(flow_hash);
  if (it == table_.end()) {
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void FdirTable::Flush() {
  table_.clear();
  ++stats_.flushes;
}

}  // namespace affinity
