// Machine topology descriptions (paper Section 6.1).

#ifndef AFFINITY_SRC_HW_TOPOLOGY_H_
#define AFFINITY_SRC_HW_TOPOLOGY_H_

#include <string>

#include "src/mem/cacheline.h"
#include "src/mem/memory_profile.h"

namespace affinity {

struct MachineSpec {
  std::string name;
  int num_chips = 1;
  int cores_per_chip = 1;
  MemoryProfile memory;
  // Private / shared cache sizes (bytes), informational.
  uint32_t l1_bytes = 0;
  uint32_t l2_bytes = 0;
  uint32_t l3_bytes = 0;

  int total_cores() const { return num_chips * cores_per_chip; }
  int ChipOf(CoreId core) const { return core / cores_per_chip; }
  bool SameChip(CoreId a, CoreId b) const { return ChipOf(a) == ChipOf(b); }
};

// The 48-core machine: Tyan Thunder S4985 + M4985, 8x 2.4 GHz 6-core AMD
// Opteron 8431. 64 KB L1 I+D, 512 KB private L2, 6 MB shared L3 per chip
// (1 MB used by the HT Assist probe filter).
MachineSpec Amd48();

// The 80-core machine: 8x 2.4 GHz 10-core Intel Xeon E7 8870. 32 KB private
// L1 I+D, 256 KB private L2, 30 MB shared L3 per chip.
MachineSpec Intel80();

}  // namespace affinity

#endif  // AFFINITY_SRC_HW_TOPOLOGY_H_
