#include "src/obs/stats_sampler.h"

#include <chrono>

namespace affinity {
namespace obs {

namespace {

// Rates for every counter series: (cur - prev) / dt. Gauges are levels, not
// flows, so they are skipped (their current value is in the snapshot).
std::vector<RateSeries> RatesBetween(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                                     double dt_s) {
  std::vector<RateSeries> rates;
  if (dt_s <= 0) {
    return rates;
  }
  for (const SeriesSnap& s : cur.series) {
    if (s.kind != MetricKind::kCounter) {
      continue;
    }
    const SeriesSnap* before = prev.Find(s.name);
    RateSeries r;
    r.name = s.name;
    r.per_core.reserve(s.values.size());
    for (size_t i = 0; i < s.values.size(); ++i) {
      uint64_t prev_v = (before != nullptr && i < before->values.size()) ? before->values[i] : 0;
      double d = static_cast<double>(s.values[i] - prev_v) / dt_s;
      r.per_core.push_back(d);
      r.total += d;
    }
    rates.push_back(std::move(r));
  }
  return rates;
}

}  // namespace

StatsSampler::StatsSampler(const MetricsRegistry* registry, int interval_ms)
    : registry_(registry), interval_ms_(interval_ms < 1 ? 1 : interval_ms) {}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { RunThread(); });
}

void StatsSampler::Stop() {
  if (!started_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  started_ = false;
}

std::vector<IntervalSample> StatsSampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void StatsSampler::RunThread() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  MetricsSnapshot prev = registry_->Snapshot();
  auto prev_time = start;

  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_), [this] { return stop_; });
    auto now = Clock::now();
    double dt_s = std::chrono::duration<double>(now - prev_time).count();
    // On shutdown, keep a trailing partial interval only if it is long
    // enough to give meaningful rates.
    if (stop_ && dt_s * 1000.0 < static_cast<double>(interval_ms_) / 2.0) {
      break;
    }
    lock.unlock();
    MetricsSnapshot cur = registry_->Snapshot();
    IntervalSample sample;
    sample.t_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start).count());
    sample.interval_s = dt_s;
    sample.rates = RatesBetween(prev, cur, dt_s);
    sample.snapshot = cur;
    prev = std::move(cur);
    prev_time = now;
    lock.lock();
    samples_.push_back(std::move(sample));
    if (stop_) {
      break;
    }
  }
}

}  // namespace obs
}  // namespace affinity
