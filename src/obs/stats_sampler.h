// StatsSampler: a background thread that snapshots a MetricsRegistry every
// N ms (the runtime analogue of the paper's 100 ms balancer tick) and turns
// consecutive snapshots into per-interval rates -- conns/sec per core,
// steals/sec -- so a bench or an operator can watch the balancer work while
// the run is live instead of reading totals after Stop().

#ifndef AFFINITY_SRC_OBS_STATS_SAMPLER_H_
#define AFFINITY_SRC_OBS_STATS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"

namespace affinity {
namespace obs {

// Per-counter rate over one interval: delta / interval seconds.
struct RateSeries {
  std::string name;
  std::vector<double> per_core;
  double total = 0.0;
};

struct IntervalSample {
  uint64_t t_ms = 0;        // interval end, relative to Start()
  double interval_s = 0.0;  // measured wall duration of the interval
  std::vector<RateSeries> rates;  // one entry per counter in the registry
  MetricsSnapshot snapshot;       // cumulative state at interval end

  const RateSeries* Find(const std::string& name) const {
    for (const RateSeries& r : rates) {
      if (r.name == name) {
        return &r;
      }
    }
    return nullptr;
  }
};

class StatsSampler {
 public:
  // The registry must outlive the sampler. `interval_ms` >= 1.
  StatsSampler(const MetricsRegistry* registry, int interval_ms);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  void Start();
  // Takes a final partial sample (if at least half an interval elapsed),
  // then joins the thread. Idempotent.
  void Stop();

  int interval_ms() const { return interval_ms_; }

  // Copy of the samples recorded so far; callable at any time.
  std::vector<IntervalSample> Samples() const;

 private:
  void RunThread();
  void TakeSample(const MetricsSnapshot& prev, uint64_t start_ns);

  const MetricsRegistry* registry_;
  int interval_ms_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::vector<IntervalSample> samples_;
};

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_STATS_SAMPLER_H_
