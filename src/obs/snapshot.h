// The snapshot model every exporter renders from (src/obs/export.h).
//
// A snapshot is a point-in-time copy of a set of labeled series: counters
// and gauges carry one value per label (usually per core), histograms carry
// one plain Histogram per label. The runtime's MetricsRegistry, the
// simulator's PerfCounters/LockStat adapters, and ad-hoc Histogram exports
// all produce this one shape, so Prometheus text and JSON come from a
// single rendering path.

#ifndef AFFINITY_SRC_OBS_SNAPSHOT_H_
#define AFFINITY_SRC_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/stats.h"

namespace affinity {
namespace obs {

enum class MetricKind : uint8_t { kCounter, kGauge };

// One scalar series: `values[i]` belongs to label `label_values[i]`.
struct SeriesSnap {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::string label_key = "core";
  std::vector<std::string> label_values;
  std::vector<uint64_t> values;
  uint64_t total = 0;
};

// One histogram series, same labeling scheme.
struct HistSnap {
  std::string name;
  std::string help;
  std::string label_key = "core";
  std::vector<std::string> label_values;
  std::vector<Histogram> per_label;

  Histogram Merged() const {
    Histogram merged;
    for (const Histogram& h : per_label) {
      merged.Merge(h);
    }
    return merged;
  }
};

struct MetricsSnapshot {
  uint64_t mono_ns = 0;  // steady-clock capture time

  std::vector<SeriesSnap> series;
  std::vector<HistSnap> histograms;

  const SeriesSnap* Find(const std::string& name) const {
    for (const SeriesSnap& s : series) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  }

  const HistSnap* FindHistogram(const std::string& name) const {
    for (const HistSnap& h : histograms) {
      if (h.name == name) {
        return &h;
      }
    }
    return nullptr;
  }

  // Appends another snapshot's series (adapter composition: e.g. perf
  // counters + lock stats + latency CDFs into one exporter call).
  void Append(const MetricsSnapshot& other) {
    series.insert(series.end(), other.series.begin(), other.series.end());
    histograms.insert(histograms.end(), other.histograms.begin(), other.histograms.end());
  }
};

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_SNAPSHOT_H_
