// The counter-source seam for hardware profiling: everything the profiler
// needs from perf_event_open(2), behind a virtual interface so tests can
// script exact counter deltas (mirroring fault::SysIface for syscalls).
//
// One "group" is the per-thread set of six counters the paper's Table 3
// evaluation used on live hardware -- cycles, instructions, LLC loads and
// misses, plus task-clock and context-switches as software sanity events.
// The group is opened for the CALLING thread (the pinned reactor), read in
// one syscall, and carries time_enabled/time_running so a multiplexed PMU
// (more groups than hardware counters) can be scaled back to estimates.
//
// Graceful degradation is part of the contract, not an error path: on hosts
// where perf_event_paranoid or a seccomp filter forbids perf_event_open
// (most CI containers), OpenThreadGroup returns false with a reason and the
// profiler runs in "unavailable" mode -- phase-entry counts still work,
// hardware columns report unavailable, nothing fails.

#ifndef AFFINITY_SRC_OBS_HWPROF_COUNTER_SOURCE_H_
#define AFFINITY_SRC_OBS_HWPROF_COUNTER_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace affinity {
namespace obs {
namespace hwprof {

// The grouped events, in group order. kCycles is the group leader; the
// hardware events mirror the simulator's stack::EntryCounters (cycles,
// instructions, L2 misses) with LLC loads added so miss RATE is computable.
enum class HwEvent : uint8_t {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kTaskClock,
  kContextSwitches,
  kNumEvents,
};

inline constexpr size_t kNumHwEvents = static_cast<size_t>(HwEvent::kNumEvents);

// Metric-name fragment for an event ("cycles", "llc_misses", ...).
const char* HwEventName(HwEvent event);

// One read of the whole group. Values are raw (unscaled); time_enabled vs
// time_running is how long the group existed vs how long it was actually
// counting -- they differ only when the kernel multiplexed the PMU, and the
// profiler scales raw deltas by enabled/running to estimate the full-window
// value (the standard perf extrapolation).
struct GroupReading {
  uint64_t value[kNumHwEvents] = {};
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;
};

// The seam. Implementations: the real perf_event source below, and the
// ScriptedCounterSource tests drive. Per-core slots; OpenThreadGroup /
// ReadGroup / CloseThreadGroup for a given core are called only by that
// core's reactor thread (open at thread start, reads on the hot path,
// close at thread exit), so implementations need no per-slot locking.
class CounterSource {
 public:
  virtual ~CounterSource() = default;

  // Opens the group for the calling thread. On success fills `active` --
  // which events actually count (a follower the PMU rejects, e.g. LLC
  // events in a VM, is inactive but the group still works) -- and returns
  // true. On failure (no perf access at all) returns false with a
  // human-readable reason in *why; the caller must then treat core `core`
  // as unavailable and never call ReadGroup for it.
  virtual bool OpenThreadGroup(int core, bool active[kNumHwEvents], std::string* why) = 0;

  // One snapshot of the group. Allocation-free (hot path). Returns false
  // if the read failed; the caller skips the sample.
  virtual bool ReadGroup(int core, GroupReading* out) = 0;

  virtual void CloseThreadGroup(int core) = 0;
};

// The real thing: grouped perf_event_open counters for the calling thread
// (pid=0, cpu=-1), leader cycles, read format GROUP|TOTAL_TIME_ENABLED|
// TOTAL_TIME_RUNNING, one read(2) per ReadGroup. Tries kernel+user counting
// first and retries user-only when perf_event_paranoid forbids kernel
// visibility. One instance per Runtime (not a singleton): per-core slots
// would collide across concurrently running runtimes.
std::unique_ptr<CounterSource> MakePerfEventSource();

}  // namespace hwprof
}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_HWPROF_COUNTER_SOURCE_H_
