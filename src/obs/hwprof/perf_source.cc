#include "src/obs/hwprof/counter_source.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/mem/cacheline.h"

namespace affinity {
namespace obs {
namespace hwprof {

const char* HwEventName(HwEvent event) {
  switch (event) {
    case HwEvent::kCycles:
      return "cycles";
    case HwEvent::kInstructions:
      return "instructions";
    case HwEvent::kLlcLoads:
      return "llc_loads";
    case HwEvent::kLlcMisses:
      return "llc_misses";
    case HwEvent::kTaskClock:
      return "task_clock_ns";
    case HwEvent::kContextSwitches:
      return "context_switches";
    case HwEvent::kNumEvents:
      break;
  }
  return "?";
}

namespace {

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

void FillAttr(HwEvent event, bool exclude_kernel, perf_event_attr* attr) {
  std::memset(attr, 0, sizeof(*attr));
  attr->size = sizeof(*attr);
  attr->read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                      PERF_FORMAT_TOTAL_TIME_RUNNING;
  attr->exclude_hv = 1;
  attr->exclude_kernel = exclude_kernel ? 1 : 0;
  switch (event) {
    case HwEvent::kCycles:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case HwEvent::kInstructions:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case HwEvent::kLlcLoads:
      attr->type = PERF_TYPE_HW_CACHE;
      attr->config = PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                     (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      break;
    case HwEvent::kLlcMisses:
      attr->type = PERF_TYPE_HW_CACHE;
      attr->config = PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                     (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case HwEvent::kTaskClock:
      attr->type = PERF_TYPE_SOFTWARE;
      attr->config = PERF_COUNT_SW_TASK_CLOCK;
      break;
    case HwEvent::kContextSwitches:
      attr->type = PERF_TYPE_SOFTWARE;
      attr->config = PERF_COUNT_SW_CONTEXT_SWITCHES;
      break;
    case HwEvent::kNumEvents:
      break;
  }
}

class PerfEventSource : public CounterSource {
 public:
  PerfEventSource() = default;
  ~PerfEventSource() override {
    for (int core = 0; core < kMaxCores; ++core) {
      CloseThreadGroup(core);
    }
  }

  bool OpenThreadGroup(int core, bool active[kNumHwEvents], std::string* why) override {
    if (core < 0 || core >= kMaxCores) {
      *why = "core index out of range";
      return false;
    }
    Group& g = groups_[core].value;
    CloseThreadGroup(core);  // restart safety: a stale group would double-count

    // The leader is whichever event opens first (normally cycles); a
    // follower the PMU rejects -- LLC cache events are routinely absent in
    // VMs -- is simply inactive. Whether the kernel side is countable is
    // decided once, at the leader, and applied to the whole group so every
    // event covers the same privilege domain.
    bool exclude_kernel = false;
    int open_errno = 0;
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      perf_event_attr attr;
      FillAttr(static_cast<HwEvent>(e), exclude_kernel, &attr);
      int fd = static_cast<int>(
          PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, g.leader, PERF_FLAG_FD_CLOEXEC));
      if (fd < 0 && g.leader < 0 && (errno == EACCES || errno == EPERM)) {
        // perf_event_paranoid >= 2: user-space-only counting may still be
        // allowed.
        exclude_kernel = true;
        FillAttr(static_cast<HwEvent>(e), exclude_kernel, &attr);
        fd = static_cast<int>(
            PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, g.leader, PERF_FLAG_FD_CLOEXEC));
      }
      if (fd < 0) {
        open_errno = errno;
        continue;
      }
      g.fds[e] = fd;
      g.slot_of[e] = g.n_active++;
      if (g.leader < 0) {
        g.leader = fd;
      }
    }
    if (g.leader < 0) {
      *why = std::string("perf_event_open: ") + std::strerror(open_errno) +
             " (check /proc/sys/kernel/perf_event_paranoid)";
      return false;
    }
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      active[e] = g.fds[e] >= 0;
    }
    ioctl(g.leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(g.leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  bool ReadGroup(int core, GroupReading* out) override {
    Group& g = groups_[core].value;
    if (g.leader < 0) {
      return false;
    }
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
    uint64_t buf[3 + kNumHwEvents];
    ssize_t n = read(g.leader, buf, sizeof(buf));
    if (n < static_cast<ssize_t>((3 + static_cast<size_t>(g.n_active)) * sizeof(uint64_t)) ||
        buf[0] != static_cast<uint64_t>(g.n_active)) {
      return false;
    }
    out->time_enabled_ns = buf[1];
    out->time_running_ns = buf[2];
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      out->value[e] = g.slot_of[e] >= 0 ? buf[3 + static_cast<size_t>(g.slot_of[e])] : 0;
    }
    return true;
  }

  void CloseThreadGroup(int core) override {
    if (core < 0 || core >= kMaxCores) {
      return;
    }
    Group& g = groups_[core].value;
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      if (g.fds[e] >= 0) {
        close(g.fds[e]);
        g.fds[e] = -1;
      }
      g.slot_of[e] = -1;
    }
    g.leader = -1;
    g.n_active = 0;
  }

 private:
  struct Group {
    int fds[kNumHwEvents] = {-1, -1, -1, -1, -1, -1};
    // Position of each event in the group read buffer; -1 = inactive.
    int slot_of[kNumHwEvents] = {-1, -1, -1, -1, -1, -1};
    int leader = -1;
    int n_active = 0;
  };
  // Padded per-core slots: each is touched only by its reactor thread
  // between open and close (the destructor runs after every thread joined).
  CachePadded<Group> groups_[kMaxCores];
};

}  // namespace

std::unique_ptr<CounterSource> MakePerfEventSource() {
  return std::unique_ptr<CounterSource>(new PerfEventSource);
}

}  // namespace hwprof
}  // namespace obs
}  // namespace affinity
