// A scripted CounterSource for tests: deterministic readings per core, so
// multiplex-scaling math, phase-boundary accounting, and the PMU-unavailable
// fallback can be asserted exactly -- no real PMU, no root, TSan-clean.
//
// Same role as the FaultInjector behind fault::SysIface: the production
// code path is identical, only the seam's answers are scripted.

#ifndef AFFINITY_SRC_OBS_HWPROF_SCRIPTED_SOURCE_H_
#define AFFINITY_SRC_OBS_HWPROF_SCRIPTED_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/cacheline.h"
#include "src/obs/hwprof/counter_source.h"

namespace affinity {
namespace obs {
namespace hwprof {

class ScriptedCounterSource : public CounterSource {
 public:
  // What one core's group answers. Configure before the reactor threads
  // start; afterwards each core's slot is touched only by its own thread
  // (the read cursor advances there), matching the seam's contract.
  struct Script {
    bool available = true;
    std::string unavailable_reason = "scripted: pmu unavailable";
    bool active[kNumHwEvents] = {true, true, true, true, true, true};
    // Explicit readings, consumed in order -- unit tests script exact
    // windows (e.g. a multiplexed one where running < enabled).
    std::vector<GroupReading> readings;
    // Once explicit readings run out, reads synthesize: the last explicit
    // reading (or zeros) plus k * per_read_delta, so counters keep
    // monotonically advancing for as long as the run lasts.
    GroupReading per_read_delta;
    uint64_t next_read = 0;  // cursor; owner-thread only after start
  };

  explicit ScriptedCounterSource(int num_cores)
      : num_cores_(num_cores), scripts_(new PaddedScript[static_cast<size_t>(num_cores)]) {
    for (int core = 0; core < num_cores; ++core) {
      Script& s = scripts_[static_cast<size_t>(core)].value;
      for (size_t e = 0; e < kNumHwEvents; ++e) {
        s.per_read_delta.value[e] = 1000;
      }
      s.per_read_delta.time_enabled_ns = 1000000;
      s.per_read_delta.time_running_ns = 1000000;
    }
  }

  Script& script(int core) { return scripts_[static_cast<size_t>(core)].value; }

  // How many OpenThreadGroup calls were made (any core, any outcome).
  uint64_t opens() const { return opens_.load(std::memory_order_relaxed); }

  bool OpenThreadGroup(int core, bool active[kNumHwEvents], std::string* why) override {
    opens_.fetch_add(1, std::memory_order_relaxed);
    if (core < 0 || core >= num_cores_) {
      *why = "scripted: core out of range";
      return false;
    }
    Script& s = script(core);
    if (!s.available) {
      *why = s.unavailable_reason;
      return false;
    }
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      active[e] = s.active[e];
    }
    return true;
  }

  bool ReadGroup(int core, GroupReading* out) override {
    Script& s = script(core);
    uint64_t k = s.next_read++;
    if (k < s.readings.size()) {
      *out = s.readings[k];
      return true;
    }
    GroupReading base = s.readings.empty() ? GroupReading{} : s.readings.back();
    uint64_t extra = k - s.readings.size() + 1;
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      out->value[e] = base.value[e] + extra * s.per_read_delta.value[e];
    }
    out->time_enabled_ns = base.time_enabled_ns + extra * s.per_read_delta.time_enabled_ns;
    out->time_running_ns = base.time_running_ns + extra * s.per_read_delta.time_running_ns;
    return true;
  }

  void CloseThreadGroup(int /*core*/) override {}

 private:
  using PaddedScript = CachePadded<Script>;
  int num_cores_;
  std::unique_ptr<PaddedScript[]> scripts_;
  std::atomic<uint64_t> opens_{0};
};

}  // namespace hwprof
}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_HWPROF_SCRIPTED_SOURCE_H_
