#include "src/obs/hwprof/hwprof.h"

#include <string>

namespace affinity {
namespace obs {
namespace hwprof {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kEpollWait:
      return "epoll_wait";
    case Phase::kAccept:
      return "accept";
    case Phase::kServe:
      return "serve";
    case Phase::kSteal:
      return "steal";
    case Phase::kMaintenance:
      return "maintenance";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

HwProf::HwProf(const HwProfConfig& config, int num_cores, MetricsRegistry* registry)
    : config_(config), num_cores_(num_cores), registry_(registry) {
  if (config_.sample_every < 1) {
    config_.sample_every = 1;
  }
  if (config_.source != nullptr) {
    source_ = config_.source;
  } else {
    owned_source_ = MakePerfEventSource();
    source_ = owned_source_.get();
  }
  // The live Table 3 grid: one per-core counter per (phase, event), plus
  // the entry/sample counts that turn sampled attributions into estimates.
  for (size_t p = 0; p < kNumPhases; ++p) {
    const char* phase = PhaseName(static_cast<Phase>(p));
    entries_ids_[p] = registry_->RegisterCounter(
        std::string("hwprof_phase_entries_") + phase,
        std::string("reactor transitions into the ") + phase + " phase");
    samples_ids_[p] = registry_->RegisterCounter(
        std::string("hwprof_phase_samples_") + phase,
        std::string("sampled spans attributed to the ") + phase + " phase");
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      const char* event = HwEventName(static_cast<HwEvent>(e));
      value_ids_[p][e] = registry_->RegisterCounter(
          std::string("hwprof_") + event + "_" + phase,
          std::string(event) + " attributed to the " + phase +
              " phase (multiplex-scaled, sampled spans only)");
    }
  }
  time_enabled_id_ = registry_->RegisterCounter(
      "hwprof_time_enabled_ns", "group lifetime covered by attributed spans");
  time_running_id_ = registry_->RegisterCounter(
      "hwprof_time_running_ns", "PMU-counting time within attributed spans");
  available_id_ = registry_->RegisterGauge(
      "hwprof_available", "1 = hardware counters opened for this reactor");
  cores_.reset(new CachePadded<PerCore>[static_cast<size_t>(num_cores_)]);
}

HwProf::~HwProf() = default;

ThreadProfile* HwProf::AttachThread(int core) {
  PerCore& pc = cores_[static_cast<size_t>(core)].value;
  pc.profile.Attach(this, core);
  registry_->GaugeSet(available_id_, core, pc.profile.active() ? 1 : 0);
  return &pc.profile;
}

void HwProf::DetachThread(int core) {
  cores_[static_cast<size_t>(core)].value.profile.Detach();
}

bool HwProf::available(int core) const {
  return registry_->Value(available_id_, core) != 0;
}

int HwProf::AvailableCores() const {
  int n = 0;
  for (int core = 0; core < num_cores_; ++core) {
    if (available(core)) {
      ++n;
    }
  }
  return n;
}

const std::string& HwProf::unavailable_reason(int core) const {
  return cores_[static_cast<size_t>(core)].value.reason;
}

uint64_t HwProf::EstimatedPhaseTotal(Phase phase, HwEvent event) const {
  size_t p = static_cast<size_t>(phase);
  size_t e = static_cast<size_t>(event);
  double total = 0;
  // Scale per (core, phase): cores can sample at different effective rates
  // (an idle reactor transitions less), so the extrapolation must not mix
  // one core's entries with another's samples.
  for (int core = 0; core < num_cores_; ++core) {
    uint64_t attributed = registry_->Value(value_ids_[p][e], core);
    uint64_t samples = registry_->Value(samples_ids_[p], core);
    uint64_t entries = registry_->Value(entries_ids_[p], core);
    if (samples == 0) {
      continue;
    }
    total += static_cast<double>(attributed) * static_cast<double>(entries) /
             static_cast<double>(samples);
  }
  return static_cast<uint64_t>(total + 0.5);
}

uint64_t HwProf::EstimatedTotal(HwEvent event) const {
  uint64_t total = 0;
  for (size_t p = 0; p < kNumPhases; ++p) {
    total += EstimatedPhaseTotal(static_cast<Phase>(p), event);
  }
  return total;
}

uint64_t HwProf::PhaseEntries(Phase phase) const {
  return registry_->Total(entries_ids_[static_cast<size_t>(phase)]);
}

void ThreadProfile::Attach(HwProf* owner, int core) {
  source_ = owner->source_;
  core_ = core;
  sample_every_ = owner->config_.sample_every;
  span_open_ = false;
  countdown_ = sample_every_;
  current_ = Phase::kMaintenance;  // thread setup counts as maintenance
  for (size_t p = 0; p < kNumPhases; ++p) {
    entries_[p] = owner->registry_->Cell(owner->entries_ids_[p], core);
    samples_[p] = owner->registry_->Cell(owner->samples_ids_[p], core);
    for (size_t e = 0; e < kNumHwEvents; ++e) {
      values_[p][e] = owner->registry_->Cell(owner->value_ids_[p][e], core);
    }
  }
  time_enabled_ = owner->registry_->Cell(owner->time_enabled_id_, core);
  time_running_ = owner->registry_->Cell(owner->time_running_id_, core);
  std::string why;
  HwProf::PerCore& pc = owner->cores_[static_cast<size_t>(core)].value;
  active_ = source_->OpenThreadGroup(core, event_active_, &why);
  pc.reason = active_ ? std::string() : why;
}

void ThreadProfile::Detach() {
  if (!active_) {
    return;
  }
  if (span_open_) {
    GroupReading r;
    if (source_->ReadGroup(core_, &r)) {
      Attribute(current_, span_start_, r);
    }
    span_open_ = false;
  }
  source_->CloseThreadGroup(core_);
  active_ = false;
}

void ThreadProfile::EnterPhase(Phase next) {
  entries_[static_cast<size_t>(next)]->fetch_add(1, std::memory_order_relaxed);
  if (!active_) {
    current_ = next;
    return;
  }
  if (span_open_) {
    GroupReading r;
    if (source_->ReadGroup(core_, &r)) {
      Attribute(current_, span_start_, r);
      if (sample_every_ <= 1) {
        span_start_ = r;  // continuous mode: every transition closes+opens
      } else {
        span_open_ = false;
        countdown_ = sample_every_ - 1;
      }
    } else {
      span_open_ = false;
      countdown_ = sample_every_;
    }
  } else if (--countdown_ <= 0) {
    countdown_ = sample_every_;
    span_open_ = source_->ReadGroup(core_, &span_start_);
  }
  current_ = next;
}

void ThreadProfile::Attribute(Phase phase, const GroupReading& r0, const GroupReading& r1) {
  size_t p = static_cast<size_t>(phase);
  uint64_t d_enabled = r1.time_enabled_ns - r0.time_enabled_ns;
  uint64_t d_running = r1.time_running_ns - r0.time_running_ns;
  // Multiplex extrapolation: the PMU counted for d_running of the span's
  // d_enabled lifetime; raw * enabled/running estimates the full-span
  // value. scale == 1 when the group was never descheduled from the PMU
  // (and when a scripted reading carries no time info: a never-running
  // counter has raw == 0 anyway).
  double scale = d_running > 0 ? static_cast<double>(d_enabled) / static_cast<double>(d_running)
                               : 1.0;
  for (size_t e = 0; e < kNumHwEvents; ++e) {
    if (!event_active_[e]) {
      continue;
    }
    uint64_t raw = r1.value[e] - r0.value[e];
    uint64_t scaled = static_cast<uint64_t>(static_cast<double>(raw) * scale + 0.5);
    if (scaled > 0) {
      values_[p][e]->fetch_add(scaled, std::memory_order_relaxed);
    }
  }
  samples_[p]->fetch_add(1, std::memory_order_relaxed);
  if (d_enabled > 0) {
    time_enabled_->fetch_add(d_enabled, std::memory_order_relaxed);
  }
  if (d_running > 0) {
    time_running_->fetch_add(d_running, std::memory_order_relaxed);
  }
}

}  // namespace hwprof
}  // namespace obs
}  // namespace affinity
