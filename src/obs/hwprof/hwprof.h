// HwProf: live Table 3 for the runtime -- per-reactor hardware counters
// attributed to reactor phases.
//
// The paper's Table 3 breaks kernel time down per entry point (cycles,
// instructions, L2 misses per kernel entry); the simulator reproduces that
// with stack::PerfCounters. This is the live-socket counterpart: each
// pinned reactor thread opens one grouped perf_event set (through the
// CounterSource seam) and the reactor calls EnterPhase() at every phase
// transition -- epoll_wait / accept / serve / steal / maintenance. The
// profiler reads the group at SAMPLED transitions (every Nth, to bound the
// read(2) overhead on the hot path) and attributes the delta to the phase
// that just ended; exact per-phase entry counts are kept unconditionally,
// so sampled attributions extrapolate to whole-run estimates
// (estimate = attributed * entries / samples, per core and phase).
//
// Everything lands in the shared MetricsRegistry as per-core series
// (hwprof_<event>_<phase>, hwprof_phase_entries_<phase>, ...), so the
// Prometheus/JSON exporters and the StatsSampler's rate series pick it up
// with zero extra plumbing.
//
// Degradation: when the source refuses to open (perf_event_paranoid,
// seccomp, no PMU), the thread's profile stays attached but inactive --
// entry counts still flow, hardware series stay zero, hwprof_available
// reports 0 for the core, and AvailableCores()==0 tells the bench to print
// "unavailable" instead of cycles/req.

#ifndef AFFINITY_SRC_OBS_HWPROF_HWPROF_H_
#define AFFINITY_SRC_OBS_HWPROF_HWPROF_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/mem/cacheline.h"
#include "src/obs/hwprof/counter_source.h"
#include "src/obs/metrics.h"

namespace affinity {
namespace obs {
namespace hwprof {

// The reactor loop's phases (what the counters are attributed to). One
// phase is always current; a transition ends the previous one.
enum class Phase : uint8_t {
  kEpollWait = 0,   // blocked in (or returning from) epoll_wait
  kAccept,          // draining accept4 + pool alloc + ring push
  kServe,           // serving connections (handler callbacks included)
  kSteal,           // popping and first-serving a stolen connection
  kMaintenance,     // migration tick, watchdog, batch flushes
  kNumPhases,
};

inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kNumPhases);

// Metric-name fragment ("epoll_wait", "accept", ...).
const char* PhaseName(Phase phase);

struct HwProfConfig {
  // Attribute one span every `sample_every` phase transitions; 1 = read at
  // EVERY transition (exact attribution, highest overhead -- tests use it).
  int sample_every = 32;
  // The seam. Null = the profiler owns a real MakePerfEventSource().
  CounterSource* source = nullptr;
};

class HwProf;

// Per-reactor-thread profiler state: the sampling state machine and the
// pre-resolved metric cells. Owned by HwProf (one padded slot per core);
// used only by the owning reactor thread between Attach and Detach.
class ThreadProfile {
 public:
  // The hot-path hook: the reactor entered `next`. Counts the entry,
  // closes/opens a sampling span per the countdown, attributes deltas.
  void EnterPhase(Phase next);

  // Whether hardware counters are live for this thread (false = degraded:
  // entries only).
  bool active() const { return active_; }

 private:
  friend class HwProf;

  void Attach(HwProf* owner, int core);  // resolve cells + open the group
  void Detach();                         // close the open span + the group
  void Attribute(Phase phase, const GroupReading& r0, const GroupReading& r1);

  CounterSource* source_ = nullptr;
  int core_ = 0;
  int sample_every_ = 32;
  bool active_ = false;
  bool span_open_ = false;  // span_start_ holds the reading that opened it
  int countdown_ = 0;       // transitions until the next span opens
  Phase current_ = Phase::kMaintenance;
  GroupReading span_start_;
  bool event_active_[kNumHwEvents] = {};

  // Pre-resolved registry cells (obs::MetricsRegistry::Cell), one relaxed
  // add per update on this core's own cache line.
  std::atomic<uint64_t>* entries_[kNumPhases] = {};
  std::atomic<uint64_t>* samples_[kNumPhases] = {};
  std::atomic<uint64_t>* values_[kNumPhases][kNumHwEvents] = {};
  std::atomic<uint64_t>* time_enabled_ = nullptr;
  std::atomic<uint64_t>* time_running_ = nullptr;
};

class HwProf {
 public:
  // Registers the hwprof metric series. Call where the Runtime registers
  // everything else: before any writer thread exists (registration is the
  // registry's one non-thread-safe operation).
  HwProf(const HwProfConfig& config, int num_cores, MetricsRegistry* registry);
  ~HwProf();

  HwProf(const HwProf&) = delete;
  HwProf& operator=(const HwProf&) = delete;

  // Called by reactor `core` ON its own thread at Run() start. Opens the
  // counter group for that thread and returns the profile to feed
  // EnterPhase. Never null: an unavailable PMU yields an inactive profile
  // (entries still count). Re-attaching after a detach (runtime restart)
  // reopens the group; registry counters keep accumulating.
  ThreadProfile* AttachThread(int core);

  // Called by reactor `core` on its own thread at Run() exit.
  void DetachThread(int core);

  int num_cores() const { return num_cores_; }
  int sample_every() const { return config_.sample_every; }

  // 1 if hardware counters opened for the core (mirrors the
  // hwprof_available gauge). Safe any time.
  bool available(int core) const;
  int AvailableCores() const;

  // Why a core is unavailable (empty when it is available). Written at
  // attach on the reactor thread; read it after Stop() has joined the
  // reactors (bench/test reporting), not mid-run.
  const std::string& unavailable_reason(int core) const;

  // Whole-run estimate for one event: per (core, phase), the attributed
  // value scaled by entries/samples -- the extrapolation that makes
  // sampled attribution add up to "cycles the reactors spent", divisible
  // by requests for the bench's cycles/req column.
  uint64_t EstimatedTotal(HwEvent event) const;
  uint64_t EstimatedPhaseTotal(Phase phase, HwEvent event) const;
  uint64_t PhaseEntries(Phase phase) const;

 private:
  friend class ThreadProfile;

  HwProfConfig config_;
  int num_cores_;
  MetricsRegistry* registry_;
  std::unique_ptr<CounterSource> owned_source_;
  CounterSource* source_;

  MetricsRegistry::MetricId entries_ids_[kNumPhases] = {};
  MetricsRegistry::MetricId samples_ids_[kNumPhases] = {};
  MetricsRegistry::MetricId value_ids_[kNumPhases][kNumHwEvents] = {};
  MetricsRegistry::MetricId time_enabled_id_ = 0;
  MetricsRegistry::MetricId time_running_id_ = 0;
  MetricsRegistry::MetricId available_id_ = 0;  // gauge, 1 = PMU live

  struct PerCore {
    ThreadProfile profile;
    std::string reason;  // why unavailable; settled once threads joined
  };
  std::unique_ptr<CachePadded<PerCore>[]> cores_;
};

}  // namespace hwprof
}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_HWPROF_HWPROF_H_
