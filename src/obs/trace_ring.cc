#include "src/obs/trace_ring.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace affinity {
namespace obs {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSteal:
      return "steal";
    case TraceEventType::kBusyOn:
      return "busy_on";
    case TraceEventType::kBusyOff:
      return "busy_off";
    case TraceEventType::kOverflowDrop:
      return "overflow_drop";
    case TraceEventType::kMigrate:
      return "migrate";
    case TraceEventType::kReactorDead:
      return "reactor_dead";
    case TraceEventType::kReactorRecover:
      return "reactor_recover";
    case TraceEventType::kAdmissionShed:
      return "admission_shed";
    case TraceEventType::kConnOpen:
      return "conn_open";
    case TraceEventType::kConnClose:
      return "conn_close";
  }
  return "?";
}

TraceRing::TraceRing(int num_cores, size_t capacity_per_core)
    : num_cores_(num_cores < 1 ? 1 : num_cores),
      capacity_(capacity_per_core < 1 ? 1 : capacity_per_core),
      rings_(new Ring[static_cast<size_t>(num_cores_)]) {
  for (int i = 0; i < num_cores_; ++i) {
    rings_[i].slots.resize(capacity_);
  }
}

void TraceRing::Record(int core, TraceEvent event) {
  if (core < 0 || core >= num_cores_) {
    return;
  }
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.t_ns = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                         std::chrono::steady_clock::now().time_since_epoch())
                                         .count());
  Ring& ring = rings_[core];
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.slots[ring.writes % capacity_] = event;
  ++ring.writes;
}

std::vector<TraceEvent> TraceRing::Dump() const {
  std::vector<TraceEvent> events;
  for (int i = 0; i < num_cores_; ++i) {
    const Ring& ring = rings_[i];
    std::lock_guard<std::mutex> lock(ring.mu);
    uint64_t retained = std::min<uint64_t>(ring.writes, capacity_);
    uint64_t first = ring.writes - retained;
    for (uint64_t w = first; w < ring.writes; ++w) {
      events.push_back(ring.slots[w % capacity_]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return events;
}

uint64_t TraceRing::recorded() const {
  uint64_t total = 0;
  for (int i = 0; i < num_cores_; ++i) {
    std::lock_guard<std::mutex> lock(rings_[i].mu);
    total += rings_[i].writes;
  }
  return total;
}

uint64_t TraceRing::dropped() const {
  uint64_t total = 0;
  for (int i = 0; i < num_cores_; ++i) {
    std::lock_guard<std::mutex> lock(rings_[i].mu);
    if (rings_[i].writes > capacity_) {
      total += rings_[i].writes - capacity_;
    }
  }
  return total;
}

std::string TraceRing::DumpToString() const {
  std::string out;
  for (const TraceEvent& ev : Dump()) {
    char line[160];
    switch (ev.type) {
      case TraceEventType::kSteal:
        std::snprintf(line, sizeof(line), "%12llu ns seq=%llu core=%d steal %d -> %d qlen=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core, ev.src, ev.dst, ev.qlen);
        break;
      case TraceEventType::kBusyOn:
      case TraceEventType::kBusyOff:
        std::snprintf(line, sizeof(line),
                      "%12llu ns seq=%llu core=%d %s ewma=%.2f qlen=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core,
                      TraceEventTypeName(ev.type), ev.ewma, ev.qlen);
        break;
      case TraceEventType::kOverflowDrop:
        std::snprintf(line, sizeof(line), "%12llu ns seq=%llu core=%d overflow_drop qlen=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core, ev.qlen);
        break;
      case TraceEventType::kMigrate:
        std::snprintf(line, sizeof(line),
                      "%12llu ns seq=%llu core=%d migrate group=%u %d -> %d tick=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core, ev.group, ev.src, ev.dst,
                      ev.tick);
        break;
      case TraceEventType::kReactorDead:
      case TraceEventType::kReactorRecover:
        std::snprintf(line, sizeof(line), "%12llu ns seq=%llu core=%d %s reactor=%d tick=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core,
                      TraceEventTypeName(ev.type), ev.src, ev.tick);
        break;
      case TraceEventType::kAdmissionShed:
        std::snprintf(line, sizeof(line), "%12llu ns seq=%llu core=%d admission_shed qlen=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core, ev.qlen);
        break;
      case TraceEventType::kConnOpen:
      case TraceEventType::kConnClose:
        std::snprintf(line, sizeof(line), "%12llu ns seq=%llu core=%d %s listener=%d reqs=%u\n",
                      static_cast<unsigned long long>(ev.t_ns),
                      static_cast<unsigned long long>(ev.seq), ev.core,
                      TraceEventTypeName(ev.type), ev.src, ev.qlen);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace affinity
