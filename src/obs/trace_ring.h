// TraceRing: fixed-size per-core rings of balancer decision events.
//
// Steering/balancing pathologies (COREC, the Flow Director reordering
// study) are only diagnosable from per-decision telemetry: which core stole
// from which, what the queues looked like at that instant, where the EWMA
// sat when a busy bit flipped. Each reactor records into its own ring
// (single writer, so the per-ring mutex is uncontended); Dump() merges all
// rings into one globally-ordered timeline using the shared sequence
// counter. Rings overwrite oldest-first, so the dump is the trailing window
// of each core's decisions.

#ifndef AFFINITY_SRC_OBS_TRACE_RING_H_
#define AFFINITY_SRC_OBS_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace affinity {
namespace obs {

enum class TraceEventType : uint8_t {
  kSteal,         // src (victim) -> dst (thief) connection steal
  kBusyOn,        // core crossed the high watermark
  kBusyOff,       // core's EWMA fell below the low watermark
  kOverflowDrop,  // local accept queue full, connection closed on arrival
  kMigrate,       // flow group moved src -> dst at migration tick `tick`
  kReactorDead,   // watchdog failover: src reactor marked dead by core's reactor
  kReactorRecover,  // src reactor came back; failover reversed
  kAdmissionShed,   // shaped overload: connection accepted then shed (RST)
  kConnOpen,        // handler conn entered service; src = listener id
  kConnClose,       // handler conn left service; src = listener id,
                    // qlen = requests served on the connection
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  uint64_t seq = 0;   // global order across all cores (assigned by Record)
  uint64_t t_ns = 0;  // steady-clock ns (assigned by Record)
  TraceEventType type = TraceEventType::kSteal;
  int16_t core = -1;   // core whose ring holds the event (the decider)
  int16_t src = -1;    // steal/migrate: victim core; transitions: the flipping core
  int16_t dst = -1;    // steal: thief core; migrate: the group's new owner
  double ewma = 0.0;   // busy transitions: EWMA queue length at the flip
  uint32_t qlen = 0;   // decided queue's length at decision time
  uint32_t group = 0;  // migrate: the flow group that moved
  uint32_t tick = 0;   // migrate: the decider's 100 ms epoch counter
};

class TraceRing {
 public:
  // `capacity_per_core` slots per core ring (min 1).
  TraceRing(int num_cores, size_t capacity_per_core);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  int num_cores() const { return num_cores_; }
  size_t capacity_per_core() const { return capacity_; }

  // Fills in seq and t_ns; `core` selects the ring (the calling reactor's
  // own core, so writers never contend with each other).
  void Record(int core, TraceEvent event);

  // All retained events from all rings, merged in global (seq) order.
  std::vector<TraceEvent> Dump() const;

  uint64_t recorded() const;  // total Record() calls
  uint64_t dropped() const;   // events overwritten by ring wraparound

  // Human-readable merged dump, one line per event.
  std::string DumpToString() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<TraceEvent> slots;
    uint64_t writes = 0;  // total writes; slot index = writes % capacity
  };

  int num_cores_;
  size_t capacity_;
  std::unique_ptr<Ring[]> rings_;
  std::atomic<uint64_t> seq_{0};
};

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_TRACE_RING_H_
