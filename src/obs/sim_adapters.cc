#include "src/obs/sim_adapters.h"

namespace affinity {
namespace obs {

namespace {

SeriesSnap MakeSeries(const std::string& name, const std::string& help,
                      const std::string& label_key, std::vector<std::string> labels) {
  SeriesSnap s;
  s.name = name;
  s.help = help;
  s.kind = MetricKind::kCounter;
  s.label_key = label_key;
  s.label_values = std::move(labels);
  s.values.reserve(s.label_values.size());
  return s;
}

void PushValue(SeriesSnap* s, uint64_t v) {
  s->values.push_back(v);
  s->total += v;
}

}  // namespace

MetricsSnapshot SnapshotFromPerfCounters(const PerfCounters& counters) {
  std::vector<std::string> labels;
  for (size_t i = 0; i < kNumKernelEntries; ++i) {
    labels.push_back(KernelEntryName(static_cast<KernelEntry>(i)));
  }

  SeriesSnap cycles = MakeSeries("perf_cycles", "cycles spent per kernel entry (Table 3)",
                                 "entry", labels);
  SeriesSnap instructions =
      MakeSeries("perf_instructions", "instructions retired per kernel entry (Table 3)",
                 "entry", labels);
  SeriesSnap l2_misses =
      MakeSeries("perf_l2_misses", "L2 misses per kernel entry (Table 3)", "entry", labels);
  SeriesSnap invocations =
      MakeSeries("perf_invocations", "invocations per kernel entry", "entry", labels);

  for (size_t i = 0; i < kNumKernelEntries; ++i) {
    const EntryCounters& e = counters.entry(static_cast<KernelEntry>(i));
    PushValue(&cycles, e.cycles);
    PushValue(&instructions, e.instructions);
    PushValue(&l2_misses, e.l2_misses);
    PushValue(&invocations, e.invocations);
  }

  MetricsSnapshot snap;
  snap.series.push_back(std::move(cycles));
  snap.series.push_back(std::move(instructions));
  snap.series.push_back(std::move(l2_misses));
  snap.series.push_back(std::move(invocations));
  return snap;
}

MetricsSnapshot SnapshotFromLockStat(const LockStat& lock_stat) {
  std::vector<std::string> labels;
  for (const LockClassStats& cls : lock_stat.all()) {
    labels.push_back(cls.name);
  }

  SeriesSnap acquisitions =
      MakeSeries("lock_acquisitions", "lock acquisitions per class (Table 2)", "lock", labels);
  SeriesSnap contended =
      MakeSeries("lock_contended", "contended acquisitions per class (Table 2)", "lock", labels);
  SeriesSnap hold =
      MakeSeries("lock_hold_cycles", "cycles the lock was held (Table 2)", "lock", labels);
  SeriesSnap spin = MakeSeries("lock_spin_wait_cycles",
                               "cycles spent busy-waiting to acquire (Table 2)", "lock", labels);
  SeriesSnap mutex_wait = MakeSeries(
      "lock_mutex_wait_cycles", "cycles spent sleeping to acquire (Table 2)", "lock", labels);

  for (const LockClassStats& cls : lock_stat.all()) {
    PushValue(&acquisitions, cls.acquisitions);
    PushValue(&contended, cls.contended);
    PushValue(&hold, static_cast<uint64_t>(cls.hold));
    PushValue(&spin, static_cast<uint64_t>(cls.spin_wait));
    PushValue(&mutex_wait, static_cast<uint64_t>(cls.mutex_wait));
  }

  MetricsSnapshot snap;
  snap.series.push_back(std::move(acquisitions));
  snap.series.push_back(std::move(contended));
  snap.series.push_back(std::move(hold));
  snap.series.push_back(std::move(spin));
  snap.series.push_back(std::move(mutex_wait));
  return snap;
}

void AppendHistogram(MetricsSnapshot* snapshot, const std::string& name,
                     const std::string& help, const Histogram& histogram) {
  HistSnap h;
  h.name = name;
  h.help = help;
  h.label_key = "series";
  h.label_values = {"all"};
  h.per_label.push_back(histogram);
  snapshot->histograms.push_back(std::move(h));
}

}  // namespace obs
}  // namespace affinity
