#include "src/obs/export.h"

#include <cstdio>

#include "src/obs/json_writer.h"

namespace affinity {
namespace obs {

namespace {

// Label values per the Prometheus text exposition format: backslash, double
// quote, and line feed must be escaped (\\, \", \n) or a hostile/odd label
// value -- say a UNIX listener path with a quote in it -- corrupts the whole
// scrape.
void AppendEscapedLabelValue(std::string* out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void AppendLabeled(std::string* out, const std::string& name, const std::string& label_key,
                   const std::string& label_value, const char* extra_label_key = nullptr,
                   const std::string& extra_label_value = std::string()) {
  *out += name;
  *out += '{';
  *out += label_key;
  *out += "=\"";
  AppendEscapedLabelValue(out, label_value);
  *out += '"';
  if (extra_label_key != nullptr) {
    *out += ',';
    *out += extra_label_key;
    *out += "=\"";
    AppendEscapedLabelValue(out, extra_label_value);
    *out += '"';
  }
  *out += "} ";
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot, const std::string& prefix) {
  std::string out;

  for (const SeriesSnap& s : snapshot.series) {
    bool counter = s.kind == MetricKind::kCounter;
    std::string name = prefix + s.name;
    if (counter && (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0)) {
      name += "_total";
    }
    if (!s.help.empty()) {
      out += "# HELP " + name + " " + s.help + "\n";
    }
    out += "# TYPE " + name + (counter ? " counter\n" : " gauge\n");
    for (size_t i = 0; i < s.values.size(); ++i) {
      AppendLabeled(&out, name, s.label_key, s.label_values[i]);
      out += std::to_string(s.values[i]);
      out += '\n';
    }
  }

  for (const HistSnap& h : snapshot.histograms) {
    std::string name = prefix + h.name;
    if (!h.help.empty()) {
      out += "# HELP " + name + " " + h.help + "\n";
    }
    out += "# TYPE " + name + " histogram\n";
    for (size_t i = 0; i < h.per_label.size(); ++i) {
      const Histogram& hist = h.per_label[i];
      for (const Histogram::CumulativePoint& p : hist.CumulativeCounts()) {
        AppendLabeled(&out, name + "_bucket", h.label_key, h.label_values[i], "le",
                      std::to_string(p.value));
        out += std::to_string(p.cumulative);
        out += '\n';
      }
      AppendLabeled(&out, name + "_bucket", h.label_key, h.label_values[i], "le", "+Inf");
      out += std::to_string(hist.count());
      out += '\n';
      AppendLabeled(&out, name + "_sum", h.label_key, h.label_values[i]);
      out += FormatDouble(hist.mean() * static_cast<double>(hist.count()));
      out += '\n';
      AppendLabeled(&out, name + "_count", h.label_key, h.label_values[i]);
      out += std::to_string(hist.count());
      out += '\n';
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("mono_ns").UInt(snapshot.mono_ns);

  w.Key("series").BeginArray();
  for (const SeriesSnap& s : snapshot.series) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("kind").String(s.kind == MetricKind::kCounter ? "counter" : "gauge");
    w.Key("label_key").String(s.label_key);
    w.Key("values").BeginObject();
    for (size_t i = 0; i < s.values.size(); ++i) {
      w.Key(s.label_values[i]).UInt(s.values[i]);
    }
    w.EndObject();
    w.Key("total").UInt(s.total);
    w.EndObject();
  }
  w.EndArray();

  w.Key("histograms").BeginArray();
  for (const HistSnap& h : snapshot.histograms) {
    Histogram merged = h.Merged();
    w.BeginObject();
    w.Key("name").String(h.name);
    w.Key("label_key").String(h.label_key);
    w.Key("count").UInt(merged.count());
    w.Key("mean").Double(merged.mean());
    w.Key("min").UInt(merged.min());
    w.Key("max").UInt(merged.max());
    w.Key("p50").UInt(merged.Percentile(0.50));
    w.Key("p90").UInt(merged.Percentile(0.90));
    w.Key("p99").UInt(merged.Percentile(0.99));
    w.Key("per_label").BeginObject();
    for (size_t i = 0; i < h.per_label.size(); ++i) {
      const Histogram& hist = h.per_label[i];
      w.Key(h.label_values[i]).BeginObject();
      w.Key("count").UInt(hist.count());
      w.Key("p50").UInt(hist.Percentile(0.50));
      w.Key("p90").UInt(hist.Percentile(0.90));
      w.Key("p99").UInt(hist.Percentile(0.99));
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace affinity
