// Minimal append-only JSON writer shared by the obs exporters and the bench
// results files. No DOM, no external deps: callers emit tokens in document
// order and the writer handles commas, quoting and escaping.

#ifndef AFFINITY_SRC_OBS_JSON_WRITER_H_
#define AFFINITY_SRC_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace affinity {
namespace obs {

class JsonWriter {
 public:
  std::string& str() { return out_; }
  const std::string& str() const { return out_; }

  JsonWriter& BeginObject() {
    Comma();
    pending_key_ = false;
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    stack_.pop_back();
    MarkValue();
    return *this;
  }
  JsonWriter& BeginArray() {
    Comma();
    pending_key_ = false;
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    stack_.pop_back();
    MarkValue();
    return *this;
  }

  JsonWriter& Key(const std::string& key) {
    Comma();
    AppendQuoted(key);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    Comma();
    AppendQuoted(value);
    MarkValue();
    return *this;
  }
  JsonWriter& UInt(uint64_t value) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
    out_ += buf;
    MarkValue();
    return *this;
  }
  JsonWriter& Int(int64_t value) {
    Comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out_ += buf;
    MarkValue();
    return *this;
  }
  JsonWriter& Double(double value) {
    Comma();
    if (!std::isfinite(value)) {
      out_ += "null";  // JSON has no Inf/NaN
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out_ += buf;
    }
    MarkValue();
    return *this;
  }
  JsonWriter& Bool(bool value) {
    Comma();
    out_ += value ? "true" : "false";
    MarkValue();
    return *this;
  }
  // Splices pre-rendered JSON (the caller guarantees it is a valid value).
  JsonWriter& Raw(const std::string& json) {
    Comma();
    out_ += json;
    MarkValue();
    return *this;
  }

 private:
  // Emits the separating comma unless this token opens a container, follows
  // a key, or is the first element.
  void Comma() {
    if (pending_key_) {
      return;  // value directly after "key":
    }
    if (!stack_.empty() && stack_.back()) {
      out_ += ',';
    }
  }
  void MarkValue() {
    pending_key_ = false;
    if (!stack_.empty()) {
      stack_.back() = true;
    }
  }
  void AppendQuoted(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "has emitted an element"
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_JSON_WRITER_H_
