// Exporters: one snapshot model (src/obs/snapshot.h) rendered two ways.
//
//  - ToPrometheusText: Prometheus text exposition format. Counters get the
//    `_total` suffix, every per-label value is one sample line, histograms
//    become classic `le`-bucket histograms built from the exact cumulative
//    counts of the log-bucketed Histogram.
//  - ToJson: the same snapshot as a JSON document (per-label values plus
//    derived percentiles for histograms), for the bench time-series files
//    and offline analysis.

#ifndef AFFINITY_SRC_OBS_EXPORT_H_
#define AFFINITY_SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/snapshot.h"

namespace affinity {
namespace obs {

// `prefix` is prepended to every metric name ("affinity_" by default).
std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const std::string& prefix = "affinity_");

std::string ToJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_EXPORT_H_
