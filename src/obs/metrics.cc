#include "src/obs/metrics.h"

#include <cassert>
#include <chrono>

namespace affinity {
namespace obs {

namespace {

uint64_t MonoNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

AtomicHistogram::AtomicHistogram()
    : buckets_(new std::atomic<uint64_t>[Histogram::kNumBuckets]) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void AtomicHistogram::Add(uint64_t value) {
  buckets_[Histogram::BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

void AtomicHistogram::SnapshotTo(Histogram* out) const {
  uint64_t raw[Histogram::kNumBuckets];
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    raw[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out->RestoreRaw(raw, static_cast<double>(sum_.load(std::memory_order_relaxed)),
                  min_.load(std::memory_order_relaxed), max_.load(std::memory_order_relaxed));
}

Histogram AtomicHistogram::Snapshot() const {
  Histogram out;
  SnapshotTo(&out);
  return out;
}

void AtomicHistogram::Reset() {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry(int num_cores) : num_cores_(num_cores < 1 ? 1 : num_cores) {}

MetricsRegistry::MetricId MetricsRegistry::RegisterCounter(const std::string& name,
                                                           const std::string& help) {
  scalars_.push_back(
      {name, help, MetricKind::kCounter, std::unique_ptr<PaddedCell[]>(new PaddedCell[num_cores_])});
  return static_cast<MetricId>(scalars_.size() - 1);
}

MetricsRegistry::MetricId MetricsRegistry::RegisterGauge(const std::string& name,
                                                         const std::string& help) {
  scalars_.push_back(
      {name, help, MetricKind::kGauge, std::unique_ptr<PaddedCell[]>(new PaddedCell[num_cores_])});
  return static_cast<MetricId>(scalars_.size() - 1);
}

MetricsRegistry::MetricId MetricsRegistry::RegisterHistogram(const std::string& name,
                                                             const std::string& help) {
  histograms_.push_back({name, help,
                         std::unique_ptr<AtomicHistogram[]>(
                             new AtomicHistogram[static_cast<size_t>(num_cores_)])});
  return static_cast<MetricId>(histograms_.size() - 1);
}

std::atomic<uint64_t>* MetricsRegistry::Cell(MetricId id, int core) {
  assert(id >= 0 && static_cast<size_t>(id) < scalars_.size());
  assert(core >= 0 && core < num_cores_);
  return &scalars_[static_cast<size_t>(id)].cells[core].v;
}

AtomicHistogram* MetricsRegistry::HistCell(MetricId id, int core) {
  assert(id >= 0 && static_cast<size_t>(id) < histograms_.size());
  assert(core >= 0 && core < num_cores_);
  return &histograms_[static_cast<size_t>(id)].per_core[core];
}

void MetricsRegistry::Add(MetricId id, int core, uint64_t delta) {
  assert(id >= 0 && static_cast<size_t>(id) < scalars_.size());
  assert(core >= 0 && core < num_cores_);
  scalars_[static_cast<size_t>(id)].cells[core].v.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::GaugeSet(MetricId id, int core, uint64_t value) {
  assert(id >= 0 && static_cast<size_t>(id) < scalars_.size());
  assert(core >= 0 && core < num_cores_);
  scalars_[static_cast<size_t>(id)].cells[core].v.store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(MetricId id, int core, uint64_t value) {
  assert(id >= 0 && static_cast<size_t>(id) < histograms_.size());
  assert(core >= 0 && core < num_cores_);
  histograms_[static_cast<size_t>(id)].per_core[core].Add(value);
}

uint64_t MetricsRegistry::Value(MetricId id, int core) const {
  return scalars_[static_cast<size_t>(id)].cells[core].v.load(std::memory_order_relaxed);
}

uint64_t MetricsRegistry::Total(MetricId id) const {
  uint64_t total = 0;
  for (int core = 0; core < num_cores_; ++core) {
    total += Value(id, core);
  }
  return total;
}

Histogram MetricsRegistry::HistogramSnapshot(MetricId id, int core) const {
  return histograms_[static_cast<size_t>(id)].per_core[core].Snapshot();
}

Histogram MetricsRegistry::HistogramMerged(MetricId id) const {
  Histogram merged;
  Histogram tmp;
  for (int core = 0; core < num_cores_; ++core) {
    histograms_[static_cast<size_t>(id)].per_core[core].SnapshotTo(&tmp);
    merged.Merge(tmp);
  }
  return merged;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.mono_ns = MonoNs();

  std::vector<std::string> core_labels;
  core_labels.reserve(static_cast<size_t>(num_cores_));
  for (int core = 0; core < num_cores_; ++core) {
    core_labels.push_back(std::to_string(core));
  }

  for (const ScalarDef& def : scalars_) {
    SeriesSnap s;
    s.name = def.name;
    s.help = def.help;
    s.kind = def.kind;
    s.label_values = core_labels;
    s.values.reserve(static_cast<size_t>(num_cores_));
    for (int core = 0; core < num_cores_; ++core) {
      uint64_t v = def.cells[core].v.load(std::memory_order_relaxed);
      s.values.push_back(v);
      s.total += v;
    }
    snap.series.push_back(std::move(s));
  }

  for (const HistDef& def : histograms_) {
    HistSnap h;
    h.name = def.name;
    h.help = def.help;
    h.label_values = core_labels;
    h.per_label.resize(static_cast<size_t>(num_cores_));
    for (int core = 0; core < num_cores_; ++core) {
      def.per_core[core].SnapshotTo(&h.per_label[static_cast<size_t>(core)]);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace obs
}  // namespace affinity
