// MetricsRegistry: per-core-sharded live metrics for the runtime.
//
// The paper's evaluation reads its instrumentation while the system serves
// traffic (per-entry perf counters, lock_stat, the 100 ms balancer tick).
// This registry gives src/rt/ the same property: reactor threads bump
// relaxed atomics on their own cache line, and any thread can Snapshot()
// the whole registry mid-run without stopping the reactors and without
// data races.
//
// Concurrency contract:
//  - Register*() is NOT thread-safe; register everything before the writer
//    threads start (the Runtime registers in its constructor).
//  - Add/GaugeSet/Observe and Snapshot/CounterValue are safe from any
//    thread, any time. Counters are monotone, so a snapshot is a valid
//    (slightly stale) state even when taken mid-increment.

#ifndef AFFINITY_SRC_OBS_METRICS_H_
#define AFFINITY_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/cacheline.h"
#include "src/obs/snapshot.h"
#include "src/sim/stats.h"

namespace affinity {
namespace obs {

// Histogram with the exact bucket geometry of affinity::Histogram but
// relaxed-atomic buckets, so writer threads can Add() while a reader
// snapshots. Count is derived from the buckets at snapshot time, keeping
// the bucket-sum == count invariant even for concurrent snapshots; sum and
// min/max may trail the buckets by in-flight samples.
class AtomicHistogram {
 public:
  AtomicHistogram();

  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  void Add(uint64_t value);

  // Copies the current contents into a plain Histogram.
  void SnapshotTo(Histogram* out) const;
  Histogram Snapshot() const;

  void Reset();

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // Histogram::kNumBuckets
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  using MetricId = int;

  explicit MetricsRegistry(int num_cores);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  int num_cores() const { return num_cores_; }

  // --- registration (before writer threads start) ---
  MetricId RegisterCounter(const std::string& name, const std::string& help);
  MetricId RegisterGauge(const std::string& name, const std::string& help);
  MetricId RegisterHistogram(const std::string& name, const std::string& help);

  // --- hot path (any thread) ---
  void Add(MetricId id, int core, uint64_t delta = 1);
  void GaugeSet(MetricId id, int core, uint64_t value);
  void Observe(MetricId id, int core, uint64_t value);  // histogram sample

  // --- pre-resolved hot-path handles ---
  // Resolve once after ALL registration is done (registering may reallocate
  // the definition tables) and before the writer threads start; the returned
  // cells are stable for the registry's lifetime. A reactor then increments
  // its per-core cell directly -- no id bounds checks, no table indexing, no
  // registry lookups on the per-connection path.
  std::atomic<uint64_t>* Cell(MetricId id, int core);
  AtomicHistogram* HistCell(MetricId id, int core);

  // --- live reads (any thread) ---
  uint64_t Value(MetricId id, int core) const;
  uint64_t Total(MetricId id) const;
  Histogram HistogramSnapshot(MetricId id, int core) const;
  Histogram HistogramMerged(MetricId id) const;

  MetricsSnapshot Snapshot() const;

 private:
  // One cache line per (metric, core): a reactor's increments never
  // false-share with a sibling core's.
  struct alignas(kCacheLineBytes) PaddedCell {
    std::atomic<uint64_t> v{0};
  };
  struct ScalarDef {
    std::string name;
    std::string help;
    MetricKind kind;
    std::unique_ptr<PaddedCell[]> cells;  // num_cores_ entries
  };
  struct HistDef {
    std::string name;
    std::string help;
    std::unique_ptr<AtomicHistogram[]> per_core;  // num_cores_ entries
  };

  int num_cores_;
  std::vector<ScalarDef> scalars_;
  std::vector<HistDef> histograms_;
};

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_METRICS_H_
