// Adapters from the simulator's ad-hoc stat objects onto the unified
// snapshot model, so PerfCounters (Table 3), LockStat (Table 2) and
// Histogram CDFs (Figure 4) export through the same Prometheus/JSON path
// as the live runtime's registry.

#ifndef AFFINITY_SRC_OBS_SIM_ADAPTERS_H_
#define AFFINITY_SRC_OBS_SIM_ADAPTERS_H_

#include <string>

#include "src/obs/snapshot.h"
#include "src/stack/lock_stat.h"
#include "src/stack/perf_counters.h"

namespace affinity {
namespace obs {

// Per-kernel-entry cycles / instructions / L2 misses / invocations, labeled
// by entry name (label key "entry").
MetricsSnapshot SnapshotFromPerfCounters(const PerfCounters& counters);

// Per-lock-class acquisitions / contended counts and hold / spin / mutex
// wait cycles, labeled by lock class name (label key "lock").
MetricsSnapshot SnapshotFromLockStat(const LockStat& lock_stat);

// Wraps one plain Histogram as a single-label snapshot entry (e.g. a
// simulator latency CDF) so it can ride the same exporters.
void AppendHistogram(MetricsSnapshot* snapshot, const std::string& name,
                     const std::string& help, const Histogram& histogram);

}  // namespace obs
}  // namespace affinity

#endif  // AFFINITY_SRC_OBS_SIM_ADAPTERS_H_
