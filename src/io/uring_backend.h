// UringBackend: the completion engine -- io_uring multishot accept, batched
// SQE submission, completion-batch dispatch.
//
// Shape of one reactor loop iteration under this backend:
//  1. everything staged since the last Wait (poll arms, cancels, accept
//     re-watches) is published and submitted in ONE io_uring_enter,
//  2. completions are harvested straight from the mmap'd CQ -- accepted
//     connections arrive as fds inside CQEs (no accept4 calls at all),
//     conn readiness as one-shot poll completions,
//  3. if nothing is pending, the same enter that submits also waits
//     (IORING_ENTER_GETEVENTS + EXT_ARG timeout), through the SysIface
//     kUringWait fault site so chaos plans can stall/kill this reactor
//     exactly as they do epoll ones.
// The data path stays readiness-model (sys->Read/Write on the handler
// side): completions drive WHEN to run a handler, not the byte transfer --
// see DESIGN.md 5j for where that sits relative to COREC's argument.
//
// Degradation: ProbeUringSupport() is the hwprof pattern -- probe once at
// Runtime::Start, and on refusal (seccomp, old kernel, ENOSYS) the runtime
// falls back to epoll with an explicit reason string instead of failing.
// Registered files are optional inside the backend the same way: listen fds
// are registered when the kernel allows (fixed-file accept SQEs), silently
// unregistered otherwise.

#ifndef AFFINITY_SRC_IO_URING_BACKEND_H_
#define AFFINITY_SRC_IO_URING_BACKEND_H_

#include <cstddef>
#include <vector>

#include "src/io/uring_ring.h"

namespace affinity {
namespace io {

// Startup probe result (kept separate from the backend so Runtime::Start
// and the bench can probe without building a reactor's worth of state).
struct UringProbe {
  bool available = false;
  std::string reason;  // set when unavailable
};

// Sets up a scratch ring, verifies the features this backend needs
// (EXT_ARG timeouts, NODROP completions) and that multishot accept is
// real on this kernel, then tears it down.
UringProbe ProbeUringSupport();

class UringBackend : public IoBackend {
 public:
  // `sq_entries` bounds one iteration's staging (arms + cancels + accept
  // re-watches); the CQ is sized larger because one multishot accept can
  // produce many completions per submitted SQE.
  UringBackend(int core, fault::SysIface* sys, uint32_t sq_entries = 256,
               uint32_t cq_entries = 4096)
      : core_(core), sys_(sys), sq_entries_(sq_entries), cq_entries_(cq_entries) {}
  ~UringBackend() override { Shutdown(); }

  const char* name() const override { return "uring"; }
  bool Init(std::string* error) override;
  void Shutdown() override;
  bool accepts_inline() const override { return false; }
  bool oneshot_arms() const override { return true; }

  // Optional fixed files: registers the startup listen fds so their accept
  // SQEs use the registered-file table (one fd-table lookup less per
  // completion). Best-effort -- failure leaves the backend on plain fds.
  // Must run before the first WatchListen; adopted (failover) fds simply
  // miss the table and use plain descriptors.
  void RegisterListenFds(const std::vector<int>& fds);

  bool WatchListen(int fd, uint64_t token) override;
  void UnwatchListen(int fd, uint64_t token) override;
  bool ArmConn(int fd, uint32_t events, uint64_t token, bool first) override;
  void CancelConn(int fd, uint64_t token) override;
  int Wait(IoEvent* out, int max_events, int timeout_ms) override;

  // Observability for tests: how many enter(2)s actually happened vs how
  // many ops they carried (the batching claim, measurable).
  uint64_t enters() const { return enters_; }
  uint64_t sqes_submitted() const { return sqes_submitted_; }

 private:
  // A staging slot, flushing first when the SQ is full (bounded: the SQ
  // holds one full iteration's worth by construction).
  io_uring_sqe* GetSqe();
  // Pops + translates pending CQEs; returns events filled.
  int HarvestInto(IoEvent* out, int max_events);

  int core_;
  fault::SysIface* sys_;
  uint32_t sq_entries_;
  uint32_t cq_entries_;

  int ring_fd_ = -1;
  void* sq_mmap_ = nullptr;
  size_t sq_mmap_len_ = 0;
  void* cq_mmap_ = nullptr;  // null when IORING_FEAT_SINGLE_MMAP
  size_t cq_mmap_len_ = 0;
  void* sqe_mmap_ = nullptr;
  size_t sqe_mmap_len_ = 0;

  SubmitQueue sq_;
  CompletionQueue cq_;
  bool files_registered_ = false;
  std::vector<int> registered_fds_;  // index = fixed-file slot
  uint64_t enters_ = 0;
  uint64_t sqes_submitted_ = 0;
};

}  // namespace io
}  // namespace affinity

#endif  // AFFINITY_SRC_IO_URING_BACKEND_H_
