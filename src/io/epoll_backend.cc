#include "src/io/epoll_backend.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace affinity {
namespace io {

bool EpollBackend::Init(std::string* error) {
  ep_ = epoll_create1(EPOLL_CLOEXEC);
  if (ep_ < 0) {
    if (error != nullptr) {
      *error = std::string("epoll_create1: ") + std::strerror(errno);
    }
    return false;
  }
  return true;
}

void EpollBackend::Shutdown() {
  if (ep_ >= 0) {
    close(ep_);
    ep_ = -1;
  }
}

bool EpollBackend::WatchListen(int fd, uint64_t token) {
  // Listen registrations bypass the fault seam, as the pre-refactor reactor
  // did: chaos plans target the hot path (kEpollCtl covers conn arming),
  // and a failed listen ADD at startup must surface as a dead source, not
  // an injected flake.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = token;
  return epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

void EpollBackend::UnwatchListen(int fd, uint64_t token) {
  (void)token;
  epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
}

bool EpollBackend::ArmConn(int fd, uint32_t events, uint64_t token, bool first) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  int op = first ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
  return sys_->EpollCtl(core_, ep_, op, fd, &ev) == 0;
}

void EpollBackend::CancelConn(int fd, uint64_t token) {
  // close() removes the fd from every epoll set; nothing to cancel.
  (void)fd;
  (void)token;
}

int EpollBackend::Wait(IoEvent* out, int max_events, int timeout_ms) {
  epoll_event events[64];
  if (max_events > 64) {
    max_events = 64;
  }
  int n = sys_->EpollWait(core_, ep_, events, max_events, timeout_ms);
  if (n == fault::SysIface::kKillReactor) {
    return n;
  }
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  for (int i = 0; i < n; ++i) {
    out[i] = IoEvent{};
    out[i].token = events[i].data.u64;
    out[i].events = events[i].events;
  }
  return n;
}

}  // namespace io
}  // namespace affinity
