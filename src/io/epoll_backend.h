// The original readiness engine, factored out of rt::Reactor::Run() so the
// reactor is engine-agnostic. Semantics are exactly the pre-refactor ones:
// level-triggered registrations, conn arming through sys->EpollCtl (the
// kEpollCtl fault site), the wait through sys->EpollWait (the kEpollWait
// fault site, including the kKillReactor chaos sentinel), and accept4
// drained inline by the reactor (accepts_inline() == true).

#ifndef AFFINITY_SRC_IO_EPOLL_BACKEND_H_
#define AFFINITY_SRC_IO_EPOLL_BACKEND_H_

#include "src/io/io_backend.h"

namespace affinity {
namespace io {

class EpollBackend : public IoBackend {
 public:
  EpollBackend(int core, fault::SysIface* sys) : core_(core), sys_(sys) {}
  ~EpollBackend() override { Shutdown(); }

  const char* name() const override { return "epoll"; }
  bool Init(std::string* error) override;
  void Shutdown() override;
  bool accepts_inline() const override { return true; }
  bool oneshot_arms() const override { return false; }

  bool WatchListen(int fd, uint64_t token) override;
  void UnwatchListen(int fd, uint64_t token) override;
  bool ArmConn(int fd, uint32_t events, uint64_t token, bool first) override;
  void CancelConn(int fd, uint64_t token) override;
  int Wait(IoEvent* out, int max_events, int timeout_ms) override;

 private:
  int core_;
  fault::SysIface* sys_;
  int ep_ = -1;
};

}  // namespace io
}  // namespace affinity

#endif  // AFFINITY_SRC_IO_EPOLL_BACKEND_H_
