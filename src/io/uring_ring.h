// io_uring SQ/CQ ring mechanics, separated from the live kernel ring.
//
// The container toolchain has no liburing, so the backend drives the raw
// mmap'd rings itself. Everything that can go subtly wrong -- tail/head
// arithmetic with wraparound, full-queue detection, SQE field layout for
// multishot accept / one-shot poll / async cancel, CQE-to-event decoding
// (F_MORE, ECANCELED drops, the internal-token filter) -- lives here as
// pure logic over SqView/CqView pointer bundles, so unit tests can attach
// fake heap-allocated rings and exercise the batching without a kernel ring
// (tests/io/uring_ring_test.cc), exactly the scripted-SysIface pattern the
// fault layer uses.
//
// Memory-ordering contract (mirrors liburing): the producer publishes SQEs
// with a release store of the tail; the kernel's head consumption is read
// with acquire. On the CQ side the kernel's tail is read with acquire and
// the consumed head published with release.

#ifndef AFFINITY_SRC_IO_URING_RING_H_
#define AFFINITY_SRC_IO_URING_RING_H_

#include <linux/io_uring.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include "src/io/io_backend.h"

namespace affinity {
namespace io {

// Pointers into one submission ring (mmap'd, or test-owned arrays).
struct SqView {
  std::atomic<uint32_t>* khead = nullptr;  // kernel-consumed head
  std::atomic<uint32_t>* ktail = nullptr;  // producer-published tail
  uint32_t mask = 0;
  uint32_t entries = 0;
  uint32_t* array = nullptr;  // SQE index array (identity-mapped here)
  io_uring_sqe* sqes = nullptr;
};

// Pointers into one completion ring.
struct CqView {
  std::atomic<uint32_t>* khead = nullptr;  // consumer-published head
  std::atomic<uint32_t>* ktail = nullptr;  // kernel-published tail
  uint32_t mask = 0;
  uint32_t entries = 0;
  io_uring_cqe* cqes = nullptr;
};

// Staged-SQE producer. NextSqe() hands out zeroed slots and advances a
// local tail; Flush() publishes them and returns how many the next
// io_uring_enter should claim (kernel consumption is re-read each time, so
// a partially-consumed batch self-corrects).
class SubmitQueue {
 public:
  void Attach(const SqView& view) {
    v_ = view;
    local_tail_ = v_.ktail->load(std::memory_order_relaxed);
  }

  uint32_t SpaceLeft() const {
    return v_.entries - (local_tail_ - v_.khead->load(std::memory_order_acquire));
  }

  // Staged but not yet published to the kernel-visible tail.
  uint32_t Unflushed() const { return local_tail_ - v_.ktail->load(std::memory_order_relaxed); }

  io_uring_sqe* NextSqe() {
    if (SpaceLeft() == 0) {
      return nullptr;
    }
    uint32_t idx = local_tail_ & v_.mask;
    io_uring_sqe* sqe = &v_.sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    v_.array[idx] = idx;
    ++local_tail_;
    return sqe;
  }

  uint32_t Flush() {
    v_.ktail->store(local_tail_, std::memory_order_release);
    return local_tail_ - v_.khead->load(std::memory_order_acquire);
  }

 private:
  SqView v_;
  uint32_t local_tail_ = 0;
};

// CQE consumer: pops in completion order, publishing consumption as it goes
// (the kernel reuses freed slots, so holding CQEs back risks overflow).
class CompletionQueue {
 public:
  void Attach(const CqView& view) { v_ = view; }

  bool Pop(io_uring_cqe* out) {
    uint32_t head = v_.khead->load(std::memory_order_relaxed);
    if (head == v_.ktail->load(std::memory_order_acquire)) {
      return false;
    }
    *out = v_.cqes[head & v_.mask];
    v_.khead->store(head + 1, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return v_.khead->load(std::memory_order_relaxed) ==
           v_.ktail->load(std::memory_order_acquire);
  }

 private:
  CqView v_;
};

// --- SQE preparation (field layout knowledge lives here, tested) ---

// Multishot accept: one SQE keeps delivering accepted fds until it posts a
// terminal CQE without IORING_CQE_F_MORE. The multishot flag rides in
// `ioprio` (the kernel ABI reuses the field for accept). Accepted sockets
// inherit SOCK_NONBLOCK | SOCK_CLOEXEC via accept_flags, matching what the
// epoll path's accept4 asks for.
inline void PrepMultishotAccept(io_uring_sqe* sqe, int fd, uint64_t token, bool fixed_file,
                                int file_index) {
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = fixed_file ? file_index : fd;
  if (fixed_file) {
    sqe->flags = IOSQE_FIXED_FILE;
  }
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  sqe->user_data = token;
}

// One-shot poll: completes once with the ready mask in cqe.res, consuming
// the registration -- the uring analogue of a oneshot epoll arm, re-staged
// by the reactor's Finish() on every verdict. POLL* values equal EPOLL*
// values on every Linux ABI, so the mask passes through untranslated.
inline void PrepPollAdd(io_uring_sqe* sqe, int fd, uint32_t poll_mask, uint64_t token) {
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = poll_mask;  // little-endian layout (x86/arm64)
  sqe->user_data = token;
}

// Async cancel of a pending SQE by its user_data. The cancel's OWN
// completion is tagged internal and dropped at decode; the canceled op's
// completion (-ECANCELED) is dropped by token/generation checks.
inline void PrepCancel(io_uring_sqe* sqe, uint64_t target_token) {
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_token;
  sqe->user_data = kInternalTokenTag | target_token;
}

// Decodes one CQE into an IoEvent. Returns false for completions the
// reactor must never see: internal bookkeeping (cancels' own CQEs) and
// canceled one-shot polls (their connection is already closed).
inline bool TranslateCqe(const io_uring_cqe& cqe, IoEvent* out) {
  uint64_t token = cqe.user_data;
  if ((token & kInternalTokenTag) != 0) {
    return false;
  }
  *out = IoEvent{};
  out->token = token;
  if (IsConnToken(token)) {
    if (cqe.res < 0) {
      if (cqe.res == -ECANCELED) {
        return false;  // poll canceled at close: the conn is gone
      }
      // Poll machinery failure: surface as error readiness so the reactor
      // closes the connection instead of holding it unwatched forever.
      out->events = EPOLLERR;
      return true;
    }
    out->events = static_cast<uint32_t>(cqe.res);
    return true;
  }
  // Listen token: one multishot-accept completion. A missing F_MORE means
  // this instance is done (error, cancel, or kernel pressure) and the
  // source needs re-watching -- the reactor gates that on the token
  // generation so a canceled instance's terminal cannot disturb its
  // replacement.
  out->rewatch = (cqe.flags & IORING_CQE_F_MORE) == 0;
  if (cqe.res >= 0) {
    out->accepted_fd = cqe.res;
  } else {
    out->error = -cqe.res;
  }
  return true;
}

}  // namespace io
}  // namespace affinity

#endif  // AFFINITY_SRC_IO_URING_RING_H_
