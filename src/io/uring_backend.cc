#include "src/io/uring_backend.h"

#include <netinet/in.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace affinity {
namespace io {

namespace {

// No liburing in the toolchain: the three ring syscalls, raw. Setup and
// register are cold-path and direct; enter(2) -- the hot path -- goes
// through the SysIface seam instead (kUringSubmit/kUringWait fault sites).
int UringSetup(uint32_t entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int UringRegister(int ring_fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

}  // namespace

bool UringBackend::Init(std::string* error) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  params.flags = IORING_SETUP_CQSIZE;
  params.cq_entries = cq_entries_;
  ring_fd_ = UringSetup(sq_entries_, &params);
  if (ring_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("io_uring_setup: ") + std::strerror(errno);
    }
    return false;
  }
  // NODROP: the kernel buffers completions instead of dropping them when
  // the CQ fills -- without it a burst could silently lose accepted fds.
  // EXT_ARG: enter(2) takes the wait timeout directly, so Wait() needs no
  // timeout SQE bookkeeping.
  if ((params.features & IORING_FEAT_NODROP) == 0 ||
      (params.features & IORING_FEAT_EXT_ARG) == 0) {
    if (error != nullptr) {
      *error = "kernel io_uring lacks NODROP/EXT_ARG (pre-5.19)";
    }
    Shutdown();
    return false;
  }

  sq_mmap_len_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
  cq_mmap_len_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_mmap_len_ = std::max(sq_mmap_len_, cq_mmap_len_);
  }
  sq_mmap_ = mmap(nullptr, sq_mmap_len_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                  ring_fd_, IORING_OFF_SQ_RING);
  if (sq_mmap_ == MAP_FAILED) {
    sq_mmap_ = nullptr;
    if (error != nullptr) {
      *error = std::string("mmap(sq_ring): ") + std::strerror(errno);
    }
    Shutdown();
    return false;
  }
  char* cq_base = static_cast<char*>(sq_mmap_);
  if (!single_mmap) {
    cq_mmap_ = mmap(nullptr, cq_mmap_len_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    ring_fd_, IORING_OFF_CQ_RING);
    if (cq_mmap_ == MAP_FAILED) {
      cq_mmap_ = nullptr;
      if (error != nullptr) {
        *error = std::string("mmap(cq_ring): ") + std::strerror(errno);
      }
      Shutdown();
      return false;
    }
    cq_base = static_cast<char*>(cq_mmap_);
  }
  sqe_mmap_len_ = params.sq_entries * sizeof(io_uring_sqe);
  sqe_mmap_ = mmap(nullptr, sqe_mmap_len_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                   ring_fd_, IORING_OFF_SQES);
  if (sqe_mmap_ == MAP_FAILED) {
    sqe_mmap_ = nullptr;
    if (error != nullptr) {
      *error = std::string("mmap(sqes): ") + std::strerror(errno);
    }
    Shutdown();
    return false;
  }

  char* sq_base = static_cast<char*>(sq_mmap_);
  SqView sq;
  sq.khead = reinterpret_cast<std::atomic<uint32_t>*>(sq_base + params.sq_off.head);
  sq.ktail = reinterpret_cast<std::atomic<uint32_t>*>(sq_base + params.sq_off.tail);
  sq.mask = *reinterpret_cast<uint32_t*>(sq_base + params.sq_off.ring_mask);
  sq.entries = *reinterpret_cast<uint32_t*>(sq_base + params.sq_off.ring_entries);
  sq.array = reinterpret_cast<uint32_t*>(sq_base + params.sq_off.array);
  sq.sqes = static_cast<io_uring_sqe*>(sqe_mmap_);
  sq_.Attach(sq);

  CqView cq;
  cq.khead = reinterpret_cast<std::atomic<uint32_t>*>(cq_base + params.cq_off.head);
  cq.ktail = reinterpret_cast<std::atomic<uint32_t>*>(cq_base + params.cq_off.tail);
  cq.mask = *reinterpret_cast<uint32_t*>(cq_base + params.cq_off.ring_mask);
  cq.entries = *reinterpret_cast<uint32_t*>(cq_base + params.cq_off.ring_entries);
  cq.cqes = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
  cq_.Attach(cq);
  return true;
}

void UringBackend::Shutdown() {
  if (sqe_mmap_ != nullptr) {
    munmap(sqe_mmap_, sqe_mmap_len_);
    sqe_mmap_ = nullptr;
  }
  if (cq_mmap_ != nullptr) {
    munmap(cq_mmap_, cq_mmap_len_);
    cq_mmap_ = nullptr;
  }
  if (sq_mmap_ != nullptr) {
    munmap(sq_mmap_, sq_mmap_len_);
    sq_mmap_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    close(ring_fd_);
    ring_fd_ = -1;
  }
  files_registered_ = false;
  registered_fds_.clear();
}

void UringBackend::RegisterListenFds(const std::vector<int>& fds) {
  if (fds.empty() || files_registered_) {
    return;
  }
  if (UringRegister(ring_fd_, IORING_REGISTER_FILES, fds.data(),
                    static_cast<unsigned>(fds.size())) == 0) {
    files_registered_ = true;
    registered_fds_ = fds;
  }
  // Refusal (RLIMIT_MEMLOCK, old kernel) is fine: plain fds work the same.
}

io_uring_sqe* UringBackend::GetSqe() {
  io_uring_sqe* sqe = sq_.NextSqe();
  if (sqe != nullptr) {
    return sqe;
  }
  // SQ full mid-iteration: push what is staged and retry once. The kernel
  // consumes submitted entries immediately (no SQPOLL), freeing slots.
  uint32_t to_submit = sq_.Flush();
  int r = sys_->UringSubmit(core_, ring_fd_, to_submit);
  if (r > 0) {
    ++enters_;
    sqes_submitted_ += static_cast<uint64_t>(r);
  }
  return sq_.NextSqe();
}

bool UringBackend::WatchListen(int fd, uint64_t token) {
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) {
    return false;
  }
  int file_index = -1;
  if (files_registered_) {
    for (size_t i = 0; i < registered_fds_.size(); ++i) {
      if (registered_fds_[i] == fd) {
        file_index = static_cast<int>(i);
        break;
      }
    }
  }
  PrepMultishotAccept(sqe, fd, token, file_index >= 0, file_index);
  return true;
}

void UringBackend::UnwatchListen(int fd, uint64_t token) {
  (void)fd;
  io_uring_sqe* sqe = GetSqe();
  if (sqe != nullptr) {
    PrepCancel(sqe, token);
  }
}

bool UringBackend::ArmConn(int fd, uint32_t events, uint64_t token, bool first) {
  (void)first;  // every arm is a fresh one-shot POLL_ADD
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) {
    return false;
  }
  PrepPollAdd(sqe, fd, events, token);
  return true;
}

void UringBackend::CancelConn(int fd, uint64_t token) {
  (void)fd;
  io_uring_sqe* sqe = GetSqe();
  if (sqe != nullptr) {
    PrepCancel(sqe, token);
  }
}

int UringBackend::HarvestInto(IoEvent* out, int max_events) {
  int n = 0;
  io_uring_cqe cqe;
  while (n < max_events && cq_.Pop(&cqe)) {
    if (TranslateCqe(cqe, &out[n])) {
      ++n;
    }
  }
  return n;
}

int UringBackend::Wait(IoEvent* out, int max_events, int timeout_ms) {
  uint32_t to_submit = sq_.Flush();
  // Completions already posted need no syscall at all: harvest and go. The
  // staged SQEs still get submitted (without blocking) so accepts keep
  // flowing while the reactor is busy.
  int n = HarvestInto(out, max_events);
  if (n > 0) {
    if (to_submit > 0) {
      int r = sys_->UringSubmit(core_, ring_fd_, to_submit);
      if (r > 0) {
        ++enters_;
        sqes_submitted_ += static_cast<uint64_t>(r);
      }
    }
    return n;
  }
  // Nothing pending: one enter both submits the staged batch and waits.
  int r = sys_->UringWait(core_, ring_fd_, to_submit, /*min_complete=*/1, timeout_ms);
  if (r == fault::SysIface::kKillReactor) {
    return r;
  }
  if (r < 0) {
    // ETIME: the EXT_ARG timeout expired (the normal idle path). EBUSY:
    // completion pressure -- harvest below relieves it. EINTR: retry next
    // loop. Anything else is a hard engine error.
    if (errno != ETIME && errno != EBUSY && errno != EINTR && errno != EAGAIN) {
      return -1;
    }
  } else {
    ++enters_;
    sqes_submitted_ += static_cast<uint64_t>(r);
  }
  return HarvestInto(out, max_events);
}

UringProbe ProbeUringSupport() {
  UringProbe probe;
  UringBackend ring(/*core=*/0, fault::DefaultSys(), /*sq_entries=*/8, /*cq_entries=*/16);
  std::string error;
  if (!ring.Init(&error)) {
    probe.reason = error;
    return probe;
  }
  // Feature flags cannot tell multishot accept (5.19) from plain accept
  // (5.5), so ask the kernel directly: arm one on a real listening socket.
  // An unsupporting kernel posts -EINVAL immediately; a supporting one
  // leaves the op pending (nobody connects to the scratch socket).
  int lfd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (lfd < 0) {
    probe.reason = std::string("probe socket: ") + std::strerror(errno);
    return probe;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 || listen(lfd, 1) != 0) {
    probe.reason = std::string("probe listen: ") + std::strerror(errno);
    close(lfd);
    return probe;
  }
  ring.WatchListen(lfd, MakeListenToken(lfd, 0));
  IoEvent events[4];
  int n = ring.Wait(events, 4, /*timeout_ms=*/10);
  close(lfd);
  for (int i = 0; i < n; ++i) {
    if (events[i].error != 0 && events[i].error != ECANCELED) {
      probe.reason =
          std::string("multishot accept refused: ") + std::strerror(events[i].error);
      return probe;
    }
  }
  probe.available = true;
  return probe;
}

}  // namespace io
}  // namespace affinity
