// IoBackend: the reactor's readiness/completion engine, made substitutable.
//
// PR 5 routed every fate-deciding syscall through fault::SysIface; this seam
// goes one level up and abstracts the EVENT ENGINE itself, so the same
// reactor loop (accept rings, BalancePolicy stealing, svc handlers, locality
// ledger) can run on either of two kernel interfaces:
//  - EpollBackend: the original readiness model -- epoll_wait + accept4
//    drained inline by the reactor (src/io/epoll_backend.*),
//  - UringBackend: io_uring completions -- multishot accept delivers
//    already-accepted fds in the completion stream, one-shot POLL_ADDs
//    replace epoll (re-)arming, and all staging is batched into one
//    io_uring_enter per loop iteration (src/io/uring_backend.*).
// The COREC line of work (see PAPERS.md / DESIGN.md 5j) argues completion
// batching beats per-core readiness queues at low load; this seam is what
// lets bench_rt_loopback test that claim against the paper's design without
// forking the reactor.
//
// Token scheme (shared by both backends, carried in epoll_event.data.u64 /
// io_uring_sqe.user_data verbatim):
//  - bit 63 set   = connection: bits [32,48) are the PendingConn block's
//    reuse generation (stale-completion defense -- a one-shot poll can
//    complete after its connection closed and its handle was recycled),
//    bits [0,32) the ConnHandle.
//  - bit 62 set   = backend-internal bookkeeping (a cancel's own CQE);
//    never surfaces as an IoEvent.
//  - otherwise    = listen source: bits [0,32) the listen fd, bits [32,48)
//    the source's watch generation (stale-terminal defense for re-armed
//    multishot accepts).
// Listen fds are nonnegative ints, so the tag bits can never collide.

#ifndef AFFINITY_SRC_IO_IO_BACKEND_H_
#define AFFINITY_SRC_IO_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/fault/sys_iface.h"

namespace affinity {
namespace io {

enum class IoBackendKind : uint8_t { kEpoll, kUring };

const char* IoBackendName(IoBackendKind kind);
bool ParseIoBackend(const char* name, IoBackendKind* out);

inline constexpr uint64_t kConnTokenTag = 1ull << 63;
inline constexpr uint64_t kInternalTokenTag = 1ull << 62;

inline uint64_t MakeConnToken(uint32_t handle, uint16_t gen) {
  return kConnTokenTag | (static_cast<uint64_t>(gen) << 32) | handle;
}
inline uint64_t MakeListenToken(int fd, uint16_t gen) {
  return (static_cast<uint64_t>(gen) << 32) | static_cast<uint64_t>(static_cast<uint32_t>(fd));
}
inline bool IsConnToken(uint64_t token) { return (token & kConnTokenTag) != 0; }
inline uint32_t HandleOfToken(uint64_t token) { return static_cast<uint32_t>(token); }
inline int FdOfListenToken(uint64_t token) { return static_cast<int>(static_cast<uint32_t>(token)); }
inline uint16_t GenOfToken(uint64_t token) { return static_cast<uint16_t>(token >> 32); }

// One readiness/completion event, normalized across backends. Readiness
// masks use the EPOLL* bit values (POLLIN/POLLOUT/POLLERR/POLLHUP are
// numerically identical, which is what lets the uring poll path share them).
struct IoEvent {
  uint64_t token = 0;
  uint32_t events = 0;    // EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP readiness
  int accepted_fd = -1;   // >= 0: a multishot accept delivered this fd
  int error = 0;          // listen-source completion errno (0 = none)
  // The listen source's multishot accept terminated (no more completions
  // will arrive); the reactor must WatchListen again to keep accepting.
  // Epoll never sets this -- its listen registrations are level-triggered
  // and permanent.
  bool rewatch = false;
};

// The engine contract. One instance per reactor thread, used only by that
// thread (Wait/arm/cancel are reactor-loop calls); construction and Init
// happen inside Run() after pinning.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual const char* name() const = 0;

  // Acquires kernel resources (epoll instance / ring mmaps). False with
  // *error set means this reactor cannot run on this backend.
  virtual bool Init(std::string* error) = 0;
  virtual void Shutdown() = 0;

  // True when the reactor drains accept4 itself on listen readiness
  // (epoll); false when accepted fds arrive inside IoEvents (uring).
  virtual bool accepts_inline() const = 0;

  // True when a delivered conn event consumes its registration (uring's
  // one-shot polls): the reactor clears ConnState::armed before the handler
  // runs so Finish() re-arms. Epoll registrations persist (level-triggered).
  virtual bool oneshot_arms() const = 0;

  // Starts watching a listen fd: EPOLLIN registration (epoll) or a
  // multishot accept SQE (uring).
  virtual bool WatchListen(int fd, uint64_t token) = 0;
  // Stops watching: EPOLL_CTL_DEL, or an async cancel of the multishot
  // accept (its terminal CQE is dropped via the token generation).
  virtual void UnwatchListen(int fd, uint64_t token) = 0;

  // (Re-)arms `events` (EPOLLIN or EPOLLOUT) for a held connection.
  // `first` distinguishes ADD from MOD for epoll; uring ignores it (every
  // arm is a fresh one-shot POLL_ADD). False = the connection cannot be
  // watched and must be closed.
  virtual bool ArmConn(int fd, uint32_t events, uint64_t token, bool first) = 0;
  // Cancels a pending arm before close (uring; epoll's close() implicitly
  // drops the registration).
  virtual void CancelConn(int fd, uint64_t token) = 0;

  // Blocks up to timeout_ms for events; returns the count filled into
  // `out`, 0 on timeout/EINTR, -1 on a hard engine error, or
  // fault::SysIface::kKillReactor when a chaos plan killed this reactor.
  // For uring this is also the single submission point: every SQE staged
  // since the last Wait goes to the kernel here, batched.
  virtual int Wait(IoEvent* out, int max_events, int timeout_ms) = 0;
};

// Builds the backend for `kind`. `core` keys the SysIface calls; `sys` must
// outlive the backend.
std::unique_ptr<IoBackend> CreateIoBackend(IoBackendKind kind, int core, fault::SysIface* sys);

}  // namespace io
}  // namespace affinity

#endif  // AFFINITY_SRC_IO_IO_BACKEND_H_
