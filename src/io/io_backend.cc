#include "src/io/io_backend.h"

#include <cstring>

#include "src/io/epoll_backend.h"
#include "src/io/uring_backend.h"

namespace affinity {
namespace io {

const char* IoBackendName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kUring:
      return "uring";
  }
  return "?";
}

bool ParseIoBackend(const char* name, IoBackendKind* out) {
  if (std::strcmp(name, "epoll") == 0) {
    *out = IoBackendKind::kEpoll;
  } else if (std::strcmp(name, "uring") == 0 || std::strcmp(name, "io_uring") == 0) {
    *out = IoBackendKind::kUring;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<IoBackend> CreateIoBackend(IoBackendKind kind, int core, fault::SysIface* sys) {
  switch (kind) {
    case IoBackendKind::kEpoll:
      return std::unique_ptr<IoBackend>(new EpollBackend(core, sys));
    case IoBackendKind::kUring:
      return std::unique_ptr<IoBackend>(new UringBackend(core, sys));
  }
  return nullptr;
}

}  // namespace io
}  // namespace affinity
