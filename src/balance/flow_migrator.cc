#include "src/balance/flow_migrator.h"

namespace affinity {

FlowGroupMigrator::FlowGroupMigrator(SimNic* nic, std::function<int(CoreId)> ring_of_core,
                                     uint32_t min_epochs)
    : nic_(nic),
      ring_of_core_(std::move(ring_of_core)),
      hysteresis_(nic->config().num_flow_groups, min_epochs) {}

bool FlowGroupMigrator::PickGroupOnRing(int victim_ring, uint32_t* group) {
  bool had_ineligible = false;
  return PickEligibleGroupOnRing(victim_ring, epoch_tick_, group, &had_ineligible);
}

bool FlowGroupMigrator::PickEligibleGroupOnRing(int victim_ring, uint64_t tick,
                                                uint32_t* group, bool* had_ineligible) {
  uint32_t num_groups = nic_->config().num_flow_groups;
  for (uint32_t i = 0; i < num_groups; ++i) {
    uint32_t candidate = (scan_cursor_ + i) % num_groups;
    if (nic_->RingOfFlowGroup(candidate) != victim_ring) {
      continue;
    }
    if (!hysteresis_.Eligible(candidate, tick)) {
      // Cooling off after a recent move; leave the cursor so the next epoch
      // revisits it -- the same skip FlowDirector::PickGroupOwnedByLocked
      // makes, keeping the two sides decision-identical.
      *had_ineligible = true;
      continue;
    }
    scan_cursor_ = (candidate + 1) % num_groups;
    *group = candidate;
    return true;
  }
  return false;
}

Cycles FlowGroupMigrator::RunEpoch(Cycles now, BalancePolicy* policy, int num_cores) {
  Cycles total_cost = 0;
  uint64_t tick = epoch_tick_++;
  RunMigrationEpoch(policy, num_cores, [&](CoreId core, CoreId victim) {
    uint32_t group = 0;
    bool had_ineligible = false;
    if (PickEligibleGroupOnRing(ring_of_core_(victim), tick, &group, &had_ineligible)) {
      total_cost += nic_->MigrateFlowGroup(group, ring_of_core_(core));
      hysteresis_.NoteMove(group, tick);
      history_.push_back(MigrationRecord{now, group, victim, core});
    } else if (had_ineligible) {
      ++migrations_suppressed_;
    }
  });
  return total_cost;
}

}  // namespace affinity
