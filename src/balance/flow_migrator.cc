#include "src/balance/flow_migrator.h"

#include "src/balance/migration_epoch.h"

namespace affinity {

FlowGroupMigrator::FlowGroupMigrator(SimNic* nic, std::function<int(CoreId)> ring_of_core)
    : nic_(nic), ring_of_core_(std::move(ring_of_core)) {}

bool FlowGroupMigrator::PickGroupOnRing(int victim_ring, uint32_t* group) {
  uint32_t num_groups = nic_->config().num_flow_groups;
  for (uint32_t i = 0; i < num_groups; ++i) {
    uint32_t candidate = (scan_cursor_ + i) % num_groups;
    if (nic_->RingOfFlowGroup(candidate) == victim_ring) {
      scan_cursor_ = (candidate + 1) % num_groups;
      *group = candidate;
      return true;
    }
  }
  return false;
}

Cycles FlowGroupMigrator::RunEpoch(Cycles now, BalancePolicy* policy, int num_cores) {
  Cycles total_cost = 0;
  RunMigrationEpoch(policy, num_cores, [&](CoreId core, CoreId victim) {
    uint32_t group = 0;
    if (PickGroupOnRing(ring_of_core_(victim), &group)) {
      total_cost += nic_->MigrateFlowGroup(group, ring_of_core_(core));
      history_.push_back(MigrationRecord{now, group, victim, core});
    }
  });
  return total_cost;
}

}  // namespace affinity
