#include "src/balance/balance_policy.h"

namespace affinity {

WatermarkBalancePolicy::WatermarkBalancePolicy(int num_cores, int max_local_len,
                                               const BalanceTuning& tuning,
                                               const topo::Topology* topo)
    : num_cores_(num_cores),
      topo_(topo),
      busy_(num_cores, max_local_len, tuning.high_watermark, tuning.low_watermark),
      steals_(num_cores, tuning.steal_ratio, topo) {}

bool WatermarkBalancePolicy::OnEnqueue(CoreId core, size_t len_after) {
  return busy_.OnEnqueue(core, len_after);
}

bool WatermarkBalancePolicy::OnDequeue(CoreId core, size_t len_after) {
  return busy_.OnDequeue(core, len_after);
}

bool WatermarkBalancePolicy::IsBusy(CoreId core) const { return busy_.IsBusy(core); }

bool WatermarkBalancePolicy::AnyBusy() const { return busy_.AnyBusy(); }

void WatermarkBalancePolicy::SetForcedBusy(CoreId core, bool forced) {
  busy_.SetForcedBusy(core, forced);
}

bool WatermarkBalancePolicy::IsForcedBusy(CoreId core) const {
  return busy_.IsForcedBusy(core);
}

double WatermarkBalancePolicy::EwmaValue(CoreId core) const { return busy_.EwmaValue(core); }

bool WatermarkBalancePolicy::ShouldStealThisTime(CoreId core) {
  return steals_.ShouldStealThisTime(core);
}

CoreId WatermarkBalancePolicy::PickBusyVictim(CoreId thief) {
  return steals_.PickBusyVictim(thief, busy_);
}

CoreId WatermarkBalancePolicy::PickAnyVictim(
    CoreId thief, const std::function<bool(CoreId)>& has_connections) {
  return steals_.PickAnyVictim(thief, num_cores_, has_connections);
}

void WatermarkBalancePolicy::OnSteal(CoreId thief, CoreId victim) {
  steals_.OnSteal(thief, victim);
}

CoreId WatermarkBalancePolicy::TopVictimOf(CoreId thief) const {
  return steals_.TopVictimOf(thief);
}

void WatermarkBalancePolicy::ResetEpochCounts(CoreId thief) {
  steals_.ResetEpochCounts(thief);
}

uint64_t WatermarkBalancePolicy::EpochSteals(CoreId thief, CoreId victim) const {
  return steals_.steals(thief, victim);
}

uint64_t WatermarkBalancePolicy::total_steals() const { return steals_.total_steals(); }

void WatermarkBalancePolicy::ResetTotalSteals() { steals_.ResetTotal(); }

uint64_t WatermarkBalancePolicy::transitions_to_busy() const {
  return busy_.transitions_to_busy();
}

uint64_t WatermarkBalancePolicy::transitions_to_nonbusy() const {
  return busy_.transitions_to_nonbusy();
}

LockedBalancePolicy::LockedBalancePolicy(int num_cores, int max_local_len,
                                         const BalanceTuning& tuning,
                                         const topo::Topology* topo)
    : inner_(num_cores, max_local_len, tuning, topo) {}

bool LockedBalancePolicy::OnEnqueue(CoreId core, size_t len_after) {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.OnEnqueue(core, len_after);
}

bool LockedBalancePolicy::OnDequeue(CoreId core, size_t len_after) {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.OnDequeue(core, len_after);
}

bool LockedBalancePolicy::IsBusy(CoreId core) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.IsBusy(core);
}

bool LockedBalancePolicy::AnyBusy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.AnyBusy();
}

void LockedBalancePolicy::SetForcedBusy(CoreId core, bool forced) {
  std::lock_guard<std::mutex> lock(mu_);
  inner_.SetForcedBusy(core, forced);
}

bool LockedBalancePolicy::IsForcedBusy(CoreId core) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.IsForcedBusy(core);
}

double LockedBalancePolicy::EwmaValue(CoreId core) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.EwmaValue(core);
}

bool LockedBalancePolicy::ShouldStealThisTime(CoreId core) {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.ShouldStealThisTime(core);
}

CoreId LockedBalancePolicy::PickBusyVictim(CoreId thief) {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.PickBusyVictim(thief);
}

CoreId LockedBalancePolicy::PickAnyVictim(
    CoreId thief, const std::function<bool(CoreId)>& has_connections) {
  // The predicate runs under the policy mutex; it must not call back into
  // this policy (reactor predicates only read queue lengths).
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.PickAnyVictim(thief, has_connections);
}

void LockedBalancePolicy::OnSteal(CoreId thief, CoreId victim) {
  std::lock_guard<std::mutex> lock(mu_);
  inner_.OnSteal(thief, victim);
}

CoreId LockedBalancePolicy::TopVictimOf(CoreId thief) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.TopVictimOf(thief);
}

void LockedBalancePolicy::ResetEpochCounts(CoreId thief) {
  std::lock_guard<std::mutex> lock(mu_);
  inner_.ResetEpochCounts(thief);
}

uint64_t LockedBalancePolicy::EpochSteals(CoreId thief, CoreId victim) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.EpochSteals(thief, victim);
}

uint64_t LockedBalancePolicy::total_steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.total_steals();
}

void LockedBalancePolicy::ResetTotalSteals() {
  std::lock_guard<std::mutex> lock(mu_);
  inner_.ResetTotalSteals();
}

uint64_t LockedBalancePolicy::transitions_to_busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.transitions_to_busy();
}

uint64_t LockedBalancePolicy::transitions_to_nonbusy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.transitions_to_nonbusy();
}

}  // namespace affinity
