// The shared driver for one long-term-balancer epoch (paper Section 3.3.2).
//
// Both migration executors -- the simulator's FlowGroupMigrator (which
// reprograms the SimNic's FDir table) and the runtime's steer::FlowDirector
// (which rewrites the SO_REUSEPORT cBPF steering table) -- run exactly this
// decision sequence, so the (victim, group, destination) choices they make
// from the same steal/busy history are identical by construction.
// tests/steer/steer_parity_test.cc holds the two in lock-step.

#ifndef AFFINITY_SRC_BALANCE_MIGRATION_EPOCH_H_
#define AFFINITY_SRC_BALANCE_MIGRATION_EPOCH_H_

#include <cstdint>
#include <vector>

#include "src/balance/balance_policy.h"
#include "src/mem/cacheline.h"

namespace affinity {

// Per-flow-group migration damping, shared by both executors so the sim and
// rt balancers stay decision-identical with hysteresis on. A group that just
// migrated is ineligible to move again for `min_epochs` epochs -- the fix
// for ping-ponging: two near-balanced cores alternately reading each other
// as the top victim and trading the same group back and forth every 100 ms,
// dragging its connections' cache state across the LLC each time. Failover
// and recovery moves bypass this on purpose (a dead owner always outranks
// cache warmth), and do not stamp it either -- parking is not a balancer
// decision, so it must not perturb the balancer's future choices (the
// parity test replays failovers on both sides, but only epoch moves are
// damped). min_epochs == 0 keeps the pre-hysteresis behavior bit-for-bit.
class MigrationHysteresis {
 public:
  MigrationHysteresis(uint32_t num_groups, uint32_t min_epochs)
      : min_epochs_(min_epochs),
        last_move_(min_epochs > 0 ? num_groups : 0, kNeverMoved) {}

  // May `group` migrate at epoch `tick`? Epoch ticks are the executors'
  // monotonically increasing epoch counters.
  bool Eligible(uint32_t group, uint64_t tick) const {
    if (min_epochs_ == 0) {
      return true;
    }
    uint64_t last = last_move_[group];
    return last == kNeverMoved || tick >= last + min_epochs_;
  }

  void NoteMove(uint32_t group, uint64_t tick) {
    if (min_epochs_ != 0) {
      last_move_[group] = tick;
    }
  }

  uint32_t min_epochs() const { return min_epochs_; }

 private:
  static constexpr uint64_t kNeverMoved = ~0ull;
  uint32_t min_epochs_;
  std::vector<uint64_t> last_move_;
};

// One core's migration decision: a non-busy core that stole this epoch pulls
// one flow group from its top victim. `migrate_one(core, victim)` performs
// the table rewrite (and may fail to find a group still owned by the
// victim). The epoch steal counts are reset whenever a victim was chosen,
// whether or not a group could be moved -- the paper's balancer restarts its
// census every 100 ms regardless.
template <typename MigrateOne>
inline void MigrateForCoreThisEpoch(BalancePolicy* policy, CoreId core,
                                    MigrateOne&& migrate_one) {
  if (policy->IsBusy(core)) {
    return;  // busy cores do not pull more load to themselves
  }
  CoreId victim = policy->TopVictimOf(core);
  if (victim == kNoCore) {
    return;  // did not steal this epoch: leave the steering alone
  }
  migrate_one(core, victim);
  policy->ResetEpochCounts(core);
}

// A full centralized epoch, core 0 first -- the order the simulator uses and
// the order the parity test replays.
template <typename MigrateOne>
inline void RunMigrationEpoch(BalancePolicy* policy, int num_cores, MigrateOne&& migrate_one) {
  for (CoreId core = 0; core < num_cores; ++core) {
    MigrateForCoreThisEpoch(policy, core, migrate_one);
  }
}

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_MIGRATION_EPOCH_H_
