// The shared driver for one long-term-balancer epoch (paper Section 3.3.2).
//
// Both migration executors -- the simulator's FlowGroupMigrator (which
// reprograms the SimNic's FDir table) and the runtime's steer::FlowDirector
// (which rewrites the SO_REUSEPORT cBPF steering table) -- run exactly this
// decision sequence, so the (victim, group, destination) choices they make
// from the same steal/busy history are identical by construction.
// tests/steer/steer_parity_test.cc holds the two in lock-step.

#ifndef AFFINITY_SRC_BALANCE_MIGRATION_EPOCH_H_
#define AFFINITY_SRC_BALANCE_MIGRATION_EPOCH_H_

#include "src/balance/balance_policy.h"
#include "src/mem/cacheline.h"

namespace affinity {

// One core's migration decision: a non-busy core that stole this epoch pulls
// one flow group from its top victim. `migrate_one(core, victim)` performs
// the table rewrite (and may fail to find a group still owned by the
// victim). The epoch steal counts are reset whenever a victim was chosen,
// whether or not a group could be moved -- the paper's balancer restarts its
// census every 100 ms regardless.
template <typename MigrateOne>
inline void MigrateForCoreThisEpoch(BalancePolicy* policy, CoreId core,
                                    MigrateOne&& migrate_one) {
  if (policy->IsBusy(core)) {
    return;  // busy cores do not pull more load to themselves
  }
  CoreId victim = policy->TopVictimOf(core);
  if (victim == kNoCore) {
    return;  // did not steal this epoch: leave the steering alone
  }
  migrate_one(core, victim);
  policy->ResetEpochCounts(core);
}

// A full centralized epoch, core 0 first -- the order the simulator uses and
// the order the parity test replays.
template <typename MigrateOne>
inline void RunMigrationEpoch(BalancePolicy* policy, int num_cores, MigrateOne&& migrate_one) {
  for (CoreId core = 0; core < num_cores; ++core) {
    MigrateForCoreThisEpoch(policy, core, migrate_one);
  }
}

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_MIGRATION_EPOCH_H_
