#include "src/balance/steal_policy.h"

#include <cassert>

namespace affinity {

StealPolicy::StealPolicy(int num_cores, int local_ratio)
    : num_cores_(num_cores),
      local_ratio_(local_ratio),
      share_counter_(static_cast<size_t>(num_cores), 0),
      next_victim_(static_cast<size_t>(num_cores), 0),
      counts_(static_cast<size_t>(num_cores) * static_cast<size_t>(num_cores), 0) {
  assert(num_cores > 0);
  assert(local_ratio >= 1);
}

bool StealPolicy::ShouldStealThisTime(CoreId core) {
  int& counter = share_counter_[static_cast<size_t>(core)];
  counter = (counter + 1) % (local_ratio_ + 1);
  // One accept in every (ratio + 1) goes remote.
  return counter == 0;
}

CoreId StealPolicy::PickBusyVictim(CoreId thief, const BusyTracker& busy) {
  if (!busy.AnyBusy()) {
    return kNoCore;
  }
  int start = next_victim_[static_cast<size_t>(thief)];
  for (int i = 0; i < num_cores_; ++i) {
    int candidate = (start + i) % num_cores_;
    if (candidate == thief) {
      continue;
    }
    if (busy.IsBusy(candidate)) {
      next_victim_[static_cast<size_t>(thief)] = (candidate + 1) % num_cores_;
      return candidate;
    }
  }
  return kNoCore;
}

void StealPolicy::OnSteal(CoreId thief, CoreId victim) {
  ++counts_[Index(thief, victim)];
  ++total_steals_;
}

CoreId StealPolicy::TopVictimOf(CoreId thief) const {
  CoreId best = kNoCore;
  uint64_t best_count = 0;
  for (int victim = 0; victim < num_cores_; ++victim) {
    uint64_t count = counts_[Index(thief, victim)];
    if (count > best_count) {
      best_count = count;
      best = victim;
    }
  }
  return best;
}

void StealPolicy::ResetEpochCounts(CoreId thief) {
  for (int victim = 0; victim < num_cores_; ++victim) {
    counts_[Index(thief, victim)] = 0;
  }
}

}  // namespace affinity
