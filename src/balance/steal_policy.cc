#include "src/balance/steal_policy.h"

#include <cassert>

namespace affinity {

StealPolicy::StealPolicy(int num_cores, int local_ratio, const topo::Topology* topo)
    : num_cores_(num_cores),
      local_ratio_(local_ratio),
      share_counter_(static_cast<size_t>(num_cores), 0),
      classes_(static_cast<size_t>(num_cores)),
      cursors_(static_cast<size_t>(num_cores)),
      counts_(static_cast<size_t>(num_cores) * static_cast<size_t>(num_cores), 0) {
  assert(num_cores > 0);
  assert(local_ratio >= 1);
  assert(topo == nullptr || topo->num_cores() >= num_cores);
  for (int thief = 0; thief < num_cores; ++thief) {
    std::vector<std::vector<CoreId>>& classes = classes_[static_cast<size_t>(thief)];
    if (topo != nullptr) {
      // Nearest distance class first (SMT sibling, same LLC, same node,
      // cross node); the topology may describe more cores than we run, so
      // clamp members to [0, num_cores).
      for (const std::vector<CoreId>& members : topo->PeerClasses(thief)) {
        std::vector<CoreId> kept;
        for (CoreId peer : members) {
          if (peer < num_cores) {
            kept.push_back(peer);
          }
        }
        if (!kept.empty()) {
          classes.push_back(std::move(kept));
        }
      }
    } else {
      // No topology: one class of every other core, ascending -- the
      // paper's plain round-robin.
      std::vector<CoreId> all;
      for (int peer = 0; peer < num_cores; ++peer) {
        if (peer != thief) {
          all.push_back(peer);
        }
      }
      if (!all.empty()) {
        classes.push_back(std::move(all));
      }
    }
    cursors_[static_cast<size_t>(thief)].assign(classes.size(), 0);
  }
}

bool StealPolicy::ShouldStealThisTime(CoreId core) {
  int& counter = share_counter_[static_cast<size_t>(core)];
  counter = (counter + 1) % (local_ratio_ + 1);
  // One accept in every (ratio + 1) goes remote.
  return counter == 0;
}

CoreId StealPolicy::PickBusyVictim(CoreId thief, const BusyTracker& busy) {
  if (!busy.AnyBusy()) {
    return kNoCore;
  }
  return Scan(thief, [&busy](CoreId candidate) { return busy.IsBusy(candidate); });
}

void StealPolicy::OnSteal(CoreId thief, CoreId victim) {
  ++counts_[Index(thief, victim)];
  ++total_steals_;
}

CoreId StealPolicy::TopVictimOf(CoreId thief) const {
  CoreId best = kNoCore;
  uint64_t best_count = 0;
  for (int victim = 0; victim < num_cores_; ++victim) {
    uint64_t count = counts_[Index(thief, victim)];
    if (count > best_count) {
      best_count = count;
      best = victim;
    }
  }
  return best;
}

void StealPolicy::ResetEpochCounts(CoreId thief) {
  for (int victim = 0; victim < num_cores_; ++victim) {
    counts_[Index(thief, victim)] = 0;
  }
}

}  // namespace affinity
