// BalancePolicy: the load-balancing decision surface of Affinity-Accept
// (paper Section 3.3.1), extracted so the discrete-event simulator
// (src/stack/listen_socket.cc) and the real-socket runtime (src/rt/) drive
// byte-for-byte identical watermark / EWMA / proportional-share logic.
//
// Two adapters are provided:
//  - WatermarkBalancePolicy: the paper's policy (BusyTracker + StealPolicy),
//    single-threaded, used directly by the simulator.
//  - LockedBalancePolicy: wraps a WatermarkBalancePolicy behind one mutex so
//    the runtime's reactor threads can share it. Decisions are identical to
//    the wrapped policy given the same event sequence.

#ifndef AFFINITY_SRC_BALANCE_BALANCE_POLICY_H_
#define AFFINITY_SRC_BALANCE_BALANCE_POLICY_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "src/balance/busy_tracker.h"
#include "src/balance/steal_policy.h"
#include "src/mem/cacheline.h"

namespace affinity {

// Tuning knobs shared by every adapter (defaults are the paper's settings).
struct BalanceTuning {
  int steal_ratio = 5;           // 5 local : 1 stolen
  double high_watermark = 0.75;  // fraction of max local queue length
  double low_watermark = 0.10;
};

class BalancePolicy {
 public:
  virtual ~BalancePolicy() = default;

  // --- busy tracking (Section 3.3.1, "Tracking busy cores") ---

  // A connection landed on `core`'s accept queue; `len_after` includes it.
  // Returns true if the core's busy bit flipped (callers charge a bit-vector
  // write in the simulator; the runtime just uses the decision).
  virtual bool OnEnqueue(CoreId core, size_t len_after) = 0;

  // A connection left `core`'s accept queue. Returns true if the busy bit
  // flipped.
  virtual bool OnDequeue(CoreId core, size_t len_after) = 0;

  // Batched reporting: the runtime's reactor drains accept4 (or serves) in
  // batches and reports each touched queue ONCE per batch -- one EWMA/
  // watermark update with the post-batch length instead of one per
  // connection, so the policy's shared state is touched per batch, not per
  // SYN. With batch size 1 the decisions are identical to the per-
  // connection hooks. `count` is the number of connections the batch moved.
  virtual bool OnEnqueueBatch(CoreId core, size_t count, size_t len_after) {
    (void)count;
    return OnEnqueue(core, len_after);
  }
  virtual bool OnDequeueBatch(CoreId core, size_t count, size_t len_after) {
    (void)count;
    return OnDequeue(core, len_after);
  }

  virtual bool IsBusy(CoreId core) const = 0;
  virtual bool AnyBusy() const = 0;

  // --- failure domains (src/fault watchdog failover) ---

  // Pins `core`'s busy bit on regardless of its watermarks: failover marks a
  // dead reactor permanently busy so peers steal its ring dry and migration
  // treats it as a victim only; recovery lifts the pin and the watermark
  // state underneath regains authority. Default: unsupported, no-op (the
  // simulator has no failure domains).
  virtual void SetForcedBusy(CoreId core, bool forced) {
    (void)core;
    (void)forced;
  }
  virtual bool IsForcedBusy(CoreId core) const {
    (void)core;
    return false;
  }

  // The EWMA queue length driving `core`'s low-watermark check; exposed for
  // decision tracing (obs::TraceRing records it at every busy flip).
  virtual double EwmaValue(CoreId core) const = 0;

  // --- connection stealing (Section 3.3.1, "Connection stealing") ---

  // Proportional share: with local connections available and a busy victim
  // in sight, should this accept() go remote? Advances the 5:1 counter.
  virtual bool ShouldStealThisTime(CoreId core) = 0;

  // Next busy victim for `thief`, round-robin one past the last victim;
  // kNoCore when no other core is busy.
  virtual CoreId PickBusyVictim(CoreId thief) = 0;

  // Round-robin scan over all remote cores with a queue-nonempty predicate
  // (the polling path: local queue, then busy remotes, then any remote).
  virtual CoreId PickAnyVictim(CoreId thief,
                               const std::function<bool(CoreId)>& has_connections) = 0;

  // Records a successful steal (feeds flow-group migration).
  virtual void OnSteal(CoreId thief, CoreId victim) = 0;

  // --- migration feed (Section 3.3.2) ---

  virtual CoreId TopVictimOf(CoreId thief) const = 0;
  virtual void ResetEpochCounts(CoreId thief) = 0;

  // This epoch's steal count of `thief` against `victim` -- the number the
  // 100 ms migration loop targets by ("the victim core from which it has
  // stolen the largest number of connections"). Exposed so migration
  // telemetry can record *why* a group moved.
  virtual uint64_t EpochSteals(CoreId thief, CoreId victim) const = 0;

  // --- accounting ---
  virtual uint64_t total_steals() const = 0;
  virtual void ResetTotalSteals() = 0;
  virtual uint64_t transitions_to_busy() const = 0;
  virtual uint64_t transitions_to_nonbusy() const = 0;
};

// The paper's policy, composed from the existing BusyTracker and StealPolicy.
// Not thread-safe: the simulator runs it from one event loop.
class WatermarkBalancePolicy : public BalancePolicy {
 public:
  // `topo` (not owned, may be null = flat round-robin) orders each thief's
  // victim scan by hardware distance; it must outlive the policy.
  WatermarkBalancePolicy(int num_cores, int max_local_len,
                         const BalanceTuning& tuning = BalanceTuning{},
                         const topo::Topology* topo = nullptr);

  bool OnEnqueue(CoreId core, size_t len_after) override;
  bool OnDequeue(CoreId core, size_t len_after) override;
  bool IsBusy(CoreId core) const override;
  bool AnyBusy() const override;
  void SetForcedBusy(CoreId core, bool forced) override;
  bool IsForcedBusy(CoreId core) const override;
  double EwmaValue(CoreId core) const override;
  bool ShouldStealThisTime(CoreId core) override;
  CoreId PickBusyVictim(CoreId thief) override;
  CoreId PickAnyVictim(CoreId thief,
                       const std::function<bool(CoreId)>& has_connections) override;
  void OnSteal(CoreId thief, CoreId victim) override;
  CoreId TopVictimOf(CoreId thief) const override;
  void ResetEpochCounts(CoreId thief) override;
  uint64_t EpochSteals(CoreId thief, CoreId victim) const override;
  uint64_t total_steals() const override;
  void ResetTotalSteals() override;
  uint64_t transitions_to_busy() const override;
  uint64_t transitions_to_nonbusy() const override;

  // The underlying trackers, for tests and simulator cost accounting.
  BusyTracker& busy() { return busy_; }
  const BusyTracker& busy() const { return busy_; }
  StealPolicy& steals() { return steals_; }
  const StealPolicy& steals() const { return steals_; }
  const topo::Topology* topology() const { return topo_; }

 private:
  int num_cores_;
  const topo::Topology* topo_;
  BusyTracker busy_;
  StealPolicy steals_;
};

// Thread-safe adapter for the runtime: every call takes one mutex. With the
// same (serialized) event sequence it produces the same decisions as the
// wrapped WatermarkBalancePolicy -- tests/balance/balance_policy_test.cc
// holds the two in lock-step.
class LockedBalancePolicy : public BalancePolicy {
 public:
  LockedBalancePolicy(int num_cores, int max_local_len,
                      const BalanceTuning& tuning = BalanceTuning{},
                      const topo::Topology* topo = nullptr);

  bool OnEnqueue(CoreId core, size_t len_after) override;
  bool OnDequeue(CoreId core, size_t len_after) override;
  bool IsBusy(CoreId core) const override;
  bool AnyBusy() const override;
  void SetForcedBusy(CoreId core, bool forced) override;
  bool IsForcedBusy(CoreId core) const override;
  double EwmaValue(CoreId core) const override;
  bool ShouldStealThisTime(CoreId core) override;
  CoreId PickBusyVictim(CoreId thief) override;
  CoreId PickAnyVictim(CoreId thief,
                       const std::function<bool(CoreId)>& has_connections) override;
  void OnSteal(CoreId thief, CoreId victim) override;
  CoreId TopVictimOf(CoreId thief) const override;
  void ResetEpochCounts(CoreId thief) override;
  uint64_t EpochSteals(CoreId thief, CoreId victim) const override;
  uint64_t total_steals() const override;
  void ResetTotalSteals() override;
  uint64_t transitions_to_busy() const override;
  uint64_t transitions_to_nonbusy() const override;

 private:
  mutable std::mutex mu_;
  WatermarkBalancePolicy inner_;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_BALANCE_POLICY_H_
