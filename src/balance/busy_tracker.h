// Busy/non-busy core tracking (paper Section 3.3.1, "Tracking busy cores").
//
// Each core determines its own busy status from its local accept queue:
//  - the maximum accept queue length from listen() is split evenly across
//    cores ("max local accept queue length"),
//  - when the *instantaneous* local queue length exceeds the high watermark
//    (75% of the max local length), the core is marked busy,
//  - an EWMA of the queue length, updated on every enqueue with
//    alpha = 1 / (2 * max_local_len), must drop below the low watermark
//    (10%) before the core is marked non-busy again (enqueue bursts make the
//    instantaneous length oscillate; the average does not).
// A per-listen-socket bit vector of busy bits lets non-busy cores find
// victims with a single cache-line read.

#ifndef AFFINITY_SRC_BALANCE_BUSY_TRACKER_H_
#define AFFINITY_SRC_BALANCE_BUSY_TRACKER_H_

#include <cstdint>
#include <vector>

#include "src/mem/cacheline.h"
#include "src/sim/stats.h"

namespace affinity {

class BusyTracker {
 public:
  // `max_local_len` is the per-core share of the listen() backlog.
  BusyTracker(int num_cores, int max_local_len, double high_watermark_pct = 0.75,
              double low_watermark_pct = 0.10);

  // Records a connection being added to `core`'s local accept queue;
  // `len_after` is the queue length including the new connection. Updates
  // the EWMA and both watermark checks. Returns true if the busy bit
  // changed (the caller charges a bit-vector write).
  bool OnEnqueue(CoreId core, size_t len_after);

  // Re-checks the low watermark after dequeues (the EWMA itself only moves
  // on enqueue, as in the paper, but an empty queue with a decayed average
  // still needs its bit cleared). Returns true if the busy bit changed.
  bool OnDequeue(CoreId core, size_t len_after);

  bool IsBusy(CoreId core) const {
    return forced_[static_cast<size_t>(core)] || busy_[static_cast<size_t>(core)];
  }

  // Failover overlay (the src/fault watchdog): a forced-busy core reads
  // busy to every policy check regardless of its watermarks, so peers steal
  // its ring dry and the migration loop treats it as a victim, never a
  // destination. The watermark machinery keeps updating underneath and
  // regains authority the moment the force is lifted; while forced, the
  // enqueue/dequeue hooks report no flips (the effective bit cannot move).
  void SetForcedBusy(CoreId core, bool forced);
  bool IsForcedBusy(CoreId core) const { return forced_[static_cast<size_t>(core)]; }

  // Any core marked busy right now? (single bit-vector read)
  bool AnyBusy() const { return busy_count_ > 0 || forced_count_ > 0; }
  int busy_count() const { return busy_count_; }

  double EwmaValue(CoreId core) const { return ewma_[static_cast<size_t>(core)].value(); }

  int max_local_len() const { return max_local_len_; }
  size_t high_watermark() const { return high_; }
  size_t low_watermark() const { return low_; }

  // Busy-transition counters (for tests and reports).
  uint64_t transitions_to_busy() const { return to_busy_; }
  uint64_t transitions_to_nonbusy() const { return to_nonbusy_; }

 private:
  bool SetBusy(CoreId core, bool busy);

  int max_local_len_;
  size_t high_;
  size_t low_;
  std::vector<Ewma> ewma_;
  std::vector<bool> busy_;
  std::vector<bool> forced_;
  int busy_count_ = 0;
  int forced_count_ = 0;
  uint64_t to_busy_ = 0;
  uint64_t to_nonbusy_ = 0;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_BUSY_TRACKER_H_
