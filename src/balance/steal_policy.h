// Connection-stealing policy (paper Section 3.3.1).
//
// Non-busy cores steal connections from busy cores:
//  - proportional-share scheduling between local and stolen connections at a
//    configurable ratio (the paper settles on 5 local : 1 remote),
//  - victims are chosen nearest-first by hardware distance (same physical
//    core, then same LLC, then same node, then remote -- the Table-1 cost
//    cliff), round-robin WITHIN each distance class: "Each core keeps a
//    count of the last remote core it stole from, and starts searching for
//    the next busy core one past the last core". With no topology (or a
//    flat one) there is a single class holding every other core, and the
//    scan is byte-for-byte the paper's plain round-robin,
//  - busy cores never steal,
//  - per-victim steal counts feed flow-group migration (every 100 ms each
//    non-busy core migrates one flow group from the victim it stole from the
//    most).

#ifndef AFFINITY_SRC_BALANCE_STEAL_POLICY_H_
#define AFFINITY_SRC_BALANCE_STEAL_POLICY_H_

#include <cstdint>
#include <vector>

#include "src/balance/busy_tracker.h"
#include "src/mem/cacheline.h"
#include "src/topo/topology.h"

namespace affinity {

class StealPolicy {
 public:
  // local_ratio N = accept N local connections for every 1 stolen. `topo`
  // (not owned, may be null = flat) orders each thief's victim scan by
  // distance; it must describe at least num_cores cores and outlive this
  // policy.
  StealPolicy(int num_cores, int local_ratio = 5, const topo::Topology* topo = nullptr);

  // Proportional share: given that `core` (non-busy) has local connections
  // available AND there is a busy core to steal from, should this accept()
  // take the remote connection? Advances the share counter.
  bool ShouldStealThisTime(CoreId core);

  // Picks the nearest busy victim for `thief`: distance classes nearest
  // first, round-robin within a class starting one past the last victim.
  // Returns kNoCore if no other core is busy.
  CoreId PickBusyVictim(CoreId thief, const BusyTracker& busy);

  // The same nearest-first scan with a queue-nonempty predicate, used by
  // the polling path ("followed by remote non-busy cores"). `num_cores` is
  // retained for signature stability; the victim set comes from the
  // precomputed per-thief order.
  template <typename Pred>
  CoreId PickAnyVictim(CoreId thief, int num_cores, Pred has_connections) {
    (void)num_cores;
    return Scan(thief, has_connections);
  }

  // Records a successful steal (feeds the migration heuristic).
  void OnSteal(CoreId thief, CoreId victim);

  // Victim `thief` has stolen from the most since the last epoch reset;
  // kNoCore if it has not stolen at all.
  CoreId TopVictimOf(CoreId thief) const;

  // Clears the per-epoch steal counts (after a migration decision).
  void ResetEpochCounts(CoreId thief);

  uint64_t steals(CoreId thief, CoreId victim) const {
    return counts_[Index(thief, victim)];
  }
  uint64_t total_steals() const { return total_steals_; }
  void ResetTotal() { total_steals_ = 0; }
  int local_ratio() const { return local_ratio_; }

  // `thief`'s precomputed victim order: distance classes nearest first,
  // ascending core ids within a class (tests assert the GTran steal-list
  // shape; flat = one class of all peers).
  const std::vector<std::vector<CoreId>>& VictimClasses(CoreId thief) const {
    return classes_[static_cast<size_t>(thief)];
  }

 private:
  size_t Index(CoreId thief, CoreId victim) const {
    return static_cast<size_t>(thief) * static_cast<size_t>(num_cores_) +
           static_cast<size_t>(victim);
  }

  // Nearest class first; within a class, round-robin from the cursor. The
  // cursor advances to one past a hit, preserving the paper's fairness
  // among equally-distant victims.
  template <typename Pred>
  CoreId Scan(CoreId thief, Pred wanted) {
    const std::vector<std::vector<CoreId>>& classes = classes_[static_cast<size_t>(thief)];
    std::vector<size_t>& cursors = cursors_[static_cast<size_t>(thief)];
    for (size_t ci = 0; ci < classes.size(); ++ci) {
      const std::vector<CoreId>& members = classes[ci];
      size_t start = cursors[ci];
      for (size_t i = 0; i < members.size(); ++i) {
        size_t pos = (start + i) % members.size();
        CoreId candidate = members[pos];
        if (wanted(candidate)) {
          cursors[ci] = (pos + 1) % members.size();
          return candidate;
        }
      }
    }
    return kNoCore;
  }

  int num_cores_;
  int local_ratio_;
  std::vector<int> share_counter_;  // per core, cycles 0..local_ratio
  // Per-thief victim classes (nearest first) and the per-class round-robin
  // cursor (index into the class's member list).
  std::vector<std::vector<std::vector<CoreId>>> classes_;
  std::vector<std::vector<size_t>> cursors_;
  std::vector<uint64_t> counts_;  // thief x victim steal counts (epoch)
  uint64_t total_steals_ = 0;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_STEAL_POLICY_H_
