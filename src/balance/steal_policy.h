// Connection-stealing policy (paper Section 3.3.1).
//
// Non-busy cores steal connections from busy cores:
//  - proportional-share scheduling between local and stolen connections at a
//    configurable ratio (the paper settles on 5 local : 1 remote),
//  - victims are chosen round-robin: "Each core keeps a count of the last
//    remote core it stole from, and starts searching for the next busy core
//    one past the last core",
//  - busy cores never steal,
//  - per-victim steal counts feed flow-group migration (every 100 ms each
//    non-busy core migrates one flow group from the victim it stole from the
//    most).

#ifndef AFFINITY_SRC_BALANCE_STEAL_POLICY_H_
#define AFFINITY_SRC_BALANCE_STEAL_POLICY_H_

#include <cstdint>
#include <vector>

#include "src/balance/busy_tracker.h"
#include "src/mem/cacheline.h"

namespace affinity {

class StealPolicy {
 public:
  // local_ratio N = accept N local connections for every 1 stolen.
  StealPolicy(int num_cores, int local_ratio = 5);

  // Proportional share: given that `core` (non-busy) has local connections
  // available AND there is a busy core to steal from, should this accept()
  // take the remote connection? Advances the share counter.
  bool ShouldStealThisTime(CoreId core);

  // Picks the next busy victim for `thief`, round-robin starting one past the
  // last victim. Returns kNoCore if no other core is busy.
  CoreId PickBusyVictim(CoreId thief, const BusyTracker& busy);

  // Round-robin scan over *all* remote cores with a queue-nonempty predicate,
  // used by the polling path ("followed by remote non-busy cores").
  template <typename Pred>
  CoreId PickAnyVictim(CoreId thief, int num_cores, Pred has_connections) {
    int start = next_victim_[static_cast<size_t>(thief)];
    for (int i = 0; i < num_cores; ++i) {
      int candidate = (start + i) % num_cores;
      if (candidate == thief) {
        continue;
      }
      if (has_connections(candidate)) {
        next_victim_[static_cast<size_t>(thief)] = (candidate + 1) % num_cores;
        return candidate;
      }
    }
    return kNoCore;
  }

  // Records a successful steal (feeds the migration heuristic).
  void OnSteal(CoreId thief, CoreId victim);

  // Victim `thief` has stolen from the most since the last epoch reset;
  // kNoCore if it has not stolen at all.
  CoreId TopVictimOf(CoreId thief) const;

  // Clears the per-epoch steal counts (after a migration decision).
  void ResetEpochCounts(CoreId thief);

  uint64_t steals(CoreId thief, CoreId victim) const {
    return counts_[Index(thief, victim)];
  }
  uint64_t total_steals() const { return total_steals_; }
  void ResetTotal() { total_steals_ = 0; }
  int local_ratio() const { return local_ratio_; }

 private:
  size_t Index(CoreId thief, CoreId victim) const {
    return static_cast<size_t>(thief) * static_cast<size_t>(num_cores_) +
           static_cast<size_t>(victim);
  }

  int num_cores_;
  int local_ratio_;
  std::vector<int> share_counter_;   // per core, cycles 0..local_ratio
  std::vector<int> next_victim_;     // per core, round-robin cursor
  std::vector<uint64_t> counts_;     // thief x victim steal counts (epoch)
  uint64_t total_steals_ = 0;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_STEAL_POLICY_H_
