#include "src/balance/busy_tracker.h"

#include <algorithm>
#include <cassert>

namespace affinity {

BusyTracker::BusyTracker(int num_cores, int max_local_len, double high_watermark_pct,
                         double low_watermark_pct)
    : max_local_len_(max_local_len),
      high_(static_cast<size_t>(std::max(1.0, high_watermark_pct * max_local_len))),
      low_(static_cast<size_t>(std::max(1.0, low_watermark_pct * max_local_len))),
      busy_(static_cast<size_t>(num_cores), false),
      forced_(static_cast<size_t>(num_cores), false) {
  assert(num_cores > 0);
  assert(max_local_len > 0);
  // "EWMA's alpha parameter is set to one over twice the max local accept
  //  queue length" (Section 3.3.1).
  double alpha = 1.0 / (2.0 * static_cast<double>(max_local_len));
  ewma_.reserve(static_cast<size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    ewma_.emplace_back(alpha, 0.0);
  }
}

bool BusyTracker::SetBusy(CoreId core, bool busy) {
  size_t idx = static_cast<size_t>(core);
  if (busy_[idx] == busy) {
    return false;
  }
  busy_[idx] = busy;
  busy_count_ += busy ? 1 : -1;
  if (busy) {
    ++to_busy_;
  } else {
    ++to_nonbusy_;
  }
  return true;
}

void BusyTracker::SetForcedBusy(CoreId core, bool forced) {
  size_t idx = static_cast<size_t>(core);
  if (forced_[idx] == forced) {
    return;
  }
  forced_[idx] = forced;
  forced_count_ += forced ? 1 : -1;
}

bool BusyTracker::OnEnqueue(CoreId core, size_t len_after) {
  Ewma& avg = ewma_[static_cast<size_t>(core)];
  avg.Update(static_cast<double>(len_after));

  // High watermark uses the instantaneous length: load spikes must flip the
  // bit quickly so other cores start stealing.
  if (len_after > high_) {
    bool flipped = SetBusy(core, true);
    if (flipped) {
      // Seed the average with the spike; otherwise a fresh EWMA (still near
      // zero) would clear the bit on the very next enqueue.
      avg.Reset(static_cast<double>(len_after));
    }
    return flipped && !forced_[static_cast<size_t>(core)];
  }
  // Clearing is conservative: only when the long-term average has decayed
  // below the low watermark. Watermark state, not the forced overlay,
  // decides the clear -- and while forced, the flip is invisible.
  if (busy_[static_cast<size_t>(core)] && avg.value() < static_cast<double>(low_)) {
    return SetBusy(core, false) && !forced_[static_cast<size_t>(core)];
  }
  return false;
}

bool BusyTracker::OnDequeue(CoreId core, size_t len_after) {
  // The paper only updates the EWMA on enqueue. We additionally decay it on
  // dequeue so that a core whose flow groups were all migrated away (no more
  // enqueues) can still shed its busy bit once drained; with a steady enqueue
  // stream the behaviour is identical.
  Ewma& avg = ewma_[static_cast<size_t>(core)];
  avg.Update(static_cast<double>(len_after));
  if (busy_[static_cast<size_t>(core)] && avg.value() < static_cast<double>(low_)) {
    return SetBusy(core, false) && !forced_[static_cast<size_t>(core)];
  }
  return false;
}

}  // namespace affinity
