// Flow-group migration (paper Section 3.3.2).
//
// "Every 100ms, each non-busy core finds the victim core from which it has
//  stolen the largest number of connections, and migrates one flow group from
//  that core to itself (by reprogramming the NIC's FDir table). ... Busy
//  cores do not migrate additional flow groups to themselves."

#ifndef AFFINITY_SRC_BALANCE_FLOW_MIGRATOR_H_
#define AFFINITY_SRC_BALANCE_FLOW_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/balance/balance_policy.h"
#include "src/hw/nic.h"
#include "src/mem/cacheline.h"
#include "src/sim/time.h"

namespace affinity {

struct MigrationRecord {
  Cycles when;
  uint32_t group;
  CoreId from_core;
  CoreId to_core;
};

class FlowGroupMigrator {
 public:
  // `ring_of_core` maps a core to its RX DMA ring (identity in this repo, but
  // kept explicit for partial-ring configurations).
  FlowGroupMigrator(SimNic* nic, std::function<int(CoreId)> ring_of_core);

  // Runs one migration epoch: for every non-busy core, move one flow group
  // from its top steal victim to itself, then reset that core's epoch steal
  // counts. Returns the cycles of driver work charged (FDir reprogramming),
  // attributed by the caller to the initiating cores.
  Cycles RunEpoch(Cycles now, BalancePolicy* policy, int num_cores);

  // Picks a flow group currently steered at `victim_ring`, rotating through
  // the group space so repeated migrations move different groups. Returns
  // false if the victim serves no groups.
  bool PickGroupOnRing(int victim_ring, uint32_t* group);

  const std::vector<MigrationRecord>& history() const { return history_; }
  uint64_t migrations() const { return history_.size(); }

  static constexpr Cycles kDefaultPeriod = MsToCycles(100);

 private:
  SimNic* nic_;
  std::function<int(CoreId)> ring_of_core_;
  uint32_t scan_cursor_ = 0;
  std::vector<MigrationRecord> history_;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_FLOW_MIGRATOR_H_
