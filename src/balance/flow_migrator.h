// Flow-group migration (paper Section 3.3.2).
//
// "Every 100ms, each non-busy core finds the victim core from which it has
//  stolen the largest number of connections, and migrates one flow group from
//  that core to itself (by reprogramming the NIC's FDir table). ... Busy
//  cores do not migrate additional flow groups to themselves."

#ifndef AFFINITY_SRC_BALANCE_FLOW_MIGRATOR_H_
#define AFFINITY_SRC_BALANCE_FLOW_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/balance/balance_policy.h"
#include "src/balance/migration_epoch.h"
#include "src/hw/nic.h"
#include "src/mem/cacheline.h"
#include "src/sim/time.h"

namespace affinity {

struct MigrationRecord {
  Cycles when;
  uint32_t group;
  CoreId from_core;
  CoreId to_core;
};

class FlowGroupMigrator {
 public:
  // `ring_of_core` maps a core to its RX DMA ring (identity in this repo, but
  // kept explicit for partial-ring configurations). `min_epochs` is the
  // shared MigrationHysteresis damping (0 = off): a group that migrated may
  // not migrate again for that many RunEpoch calls, matching the runtime
  // FlowDirector's min_epochs_between_moves knob decision-for-decision.
  FlowGroupMigrator(SimNic* nic, std::function<int(CoreId)> ring_of_core,
                    uint32_t min_epochs = 0);

  // Runs one migration epoch: for every non-busy core, move one flow group
  // from its top steal victim to itself, then reset that core's epoch steal
  // counts. Returns the cycles of driver work charged (FDir reprogramming),
  // attributed by the caller to the initiating cores.
  Cycles RunEpoch(Cycles now, BalancePolicy* policy, int num_cores);

  // Picks a flow group currently steered at `victim_ring`, rotating through
  // the group space so repeated migrations move different groups. Returns
  // false if the victim serves no groups.
  bool PickGroupOnRing(int victim_ring, uint32_t* group);

  const std::vector<MigrationRecord>& history() const { return history_; }
  uint64_t migrations() const { return history_.size(); }
  // Epoch decisions where the victim served at least one group but the
  // hysteresis blocked all of them; the runtime twin is
  // FlowDirector::migrations_suppressed().
  uint64_t migrations_suppressed() const { return migrations_suppressed_; }

  static constexpr Cycles kDefaultPeriod = MsToCycles(100);

 private:
  // PickGroupOnRing plus hysteresis: skips groups still cooling off at
  // epoch `tick`, reporting whether any were skipped.
  bool PickEligibleGroupOnRing(int victim_ring, uint64_t tick, uint32_t* group,
                               bool* had_ineligible);

  SimNic* nic_;
  std::function<int(CoreId)> ring_of_core_;
  uint32_t scan_cursor_ = 0;
  MigrationHysteresis hysteresis_;
  // Monotonic RunEpoch counter feeding the hysteresis. Eligibility compares
  // tick DIFFERENCES, so parity with the director holds for any two tick
  // sequences that advance by one per epoch, whatever their bases.
  uint64_t epoch_tick_ = 0;
  uint64_t migrations_suppressed_ = 0;
  std::vector<MigrationRecord> history_;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_BALANCE_FLOW_MIGRATOR_H_
