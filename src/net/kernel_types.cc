#include "src/net/kernel_types.h"

namespace affinity {

KernelTypes::KernelTypes(TypeRegistry& registry) {
  // tcp_sock: hot RX state, hot TX state, timers, wait queues and callback
  // pointers spread over the first ~17 lines; an init-once cold tail fills
  // the rest. "these shared bytes are not packed into a few cache lines but
  // spread across the data structure" (Section 6.4).
  ObjectType& tcp = registry.Register("tcp_sock", 1664);
  tcp_sock = tcp.id();
  ts.lock = tcp.AddField("lock", 0, 8);
  ts.state = tcp.AddField("state", 8, 8);
  ts.ehash_node = tcp.AddField("ehash_node", 64, 16);
  ts.global_node = tcp.AddField("global_node", 96, 16);
  ts.rcv_nxt = tcp.AddField("rcv_nxt", 128, 16);
  ts.copied_seq = tcp.AddField("copied_seq", 144, 8);
  ts.receive_queue = tcp.AddField("receive_queue", 192, 24);
  ts.backlog = tcp.AddField("backlog", 216, 16);
  ts.rmem = tcp.AddField("rmem", 256, 16);
  ts.wait_queue = tcp.AddField("wait_queue", 320, 16);
  ts.snd_nxt = tcp.AddField("snd_nxt", 384, 16);
  ts.snd_una = tcp.AddField("snd_una", 400, 8);
  ts.cwnd = tcp.AddField("cwnd", 448, 16);
  ts.write_queue = tcp.AddField("write_queue", 512, 24);
  ts.wmem = tcp.AddField("wmem", 576, 16);
  ts.rto_timer = tcp.AddField("rto_timer", 640, 32);
  ts.delack_timer = tcp.AddField("delack_timer", 704, 32);
  ts.flags = tcp.AddField("flags", 768, 16);
  ts.callbacks = tcp.AddField("callbacks", 832, 32);
  ts.route = tcp.AddField("route", 896, 48);
  ts.cong_ops = tcp.AddField("cong_ops", 960, 16);
  ts.icsk = tcp.AddField("icsk", 1024, 48);
  ts.cold = tcp.AddField("cold", 1088, 576);

  // sk_buff: queue linkage + pointers + TCP control block; payload bytes live
  // in separate slab buffers, exactly as in Linux.
  ObjectType& sb = registry.Register("sk_buff", 512);
  sk_buff = sb.id();
  skb.node = sb.AddField("node", 0, 16);
  skb.len = sb.AddField("len", 16, 16);
  skb.data_ptrs = sb.AddField("data_ptrs", 64, 32);
  skb.cb = sb.AddField("cb", 128, 48);
  skb.dst = sb.AddField("dst", 192, 32);
  skb.headers = sb.AddField("headers", 256, 40);
  skb.shinfo = sb.AddField("shinfo", 320, 64);
  skb.truesize = sb.AddField("truesize", 448, 16);

  ObjectType& rq = registry.Register("tcp_request_sock", 128);
  tcp_request_sock = rq.id();
  rs.node = rq.AddField("node", 0, 16);
  rs.seqs = rq.AddField("seqs", 16, 16);
  rs.timer = rq.AddField("timer", 64, 16);
  rs.meta = rq.AddField("meta", 80, 12);

  ObjectType& sf = registry.Register("socket_fd", 640);
  socket_fd = sf.id();
  sfd.file_ref = sf.AddField("file_ref", 0, 16);
  sfd.flags = sf.AddField("flags", 64, 8);
  sfd.ops = sf.AddField("ops", 128, 16);
  sfd.wq = sf.AddField("wq", 192, 16);

  ObjectType& fl = registry.Register("file", 192);
  file_obj = fl.id();
  file.refcnt = fl.AddField("refcnt", 0, 8);
  file.pos = fl.AddField("pos", 64, 8);
  file.ops = fl.AddField("ops", 128, 16);

  ObjectType& tk = registry.Register("task_struct", 5184);
  task_struct = tk.id();
  task.sched_state = tk.AddField("sched_state", 0, 24);
  task.rq_node = tk.AddField("rq_node", 64, 16);
  task.flags = tk.AddField("flags", 128, 8);
  task.local = tk.AddField("local", 192, 4992);

  ObjectType& s128 = registry.Register("slab:size-128", 128);
  slab_128 = s128.id();
  slab_128_hdr = s128.AddField("hdr", 0, 16);
  ObjectType& s1024 = registry.Register("slab:size-1024", 1024);
  slab_1024 = s1024.id();
  slab_1024_hdr = s1024.AddField("hdr", 0, 16);
  ObjectType& s4096 = registry.Register("slab:size-4096", 4096);
  slab_4096 = s4096.id();
  slab_4096_hdr = s4096.AddField("hdr", 0, 16);
  ObjectType& s16384 = registry.Register("slab:size-16384", 16384);
  slab_16384 = s16384.id();
  slab_16384_hdr = s16384.AddField("hdr", 0, 16);
}

TypeId KernelTypes::PayloadTypeFor(uint32_t bytes) const {
  if (bytes <= 128) {
    return slab_128;
  }
  if (bytes <= 1024) {
    return slab_1024;
  }
  if (bytes <= 4096) {
    return slab_4096;
  }
  return slab_16384;
}

FieldId KernelTypes::PayloadHeaderFor(TypeId type) const {
  if (type == slab_128) {
    return slab_128_hdr;
  }
  if (type == slab_1024) {
    return slab_1024_hdr;
  }
  if (type == slab_4096) {
    return slab_4096_hdr;
  }
  return slab_16384_hdr;
}

}  // namespace affinity
