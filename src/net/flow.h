// TCP flow identification.

#ifndef AFFINITY_SRC_NET_FLOW_H_
#define AFFINITY_SRC_NET_FLOW_H_

#include <cstdint>
#include <functional>

namespace affinity {

// The flow-identifier five-tuple the NIC hashes (Section 3.1). Protocol is
// implicitly TCP everywhere in this reproduction.
struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;

  bool operator==(const FiveTuple& other) const = default;
};

// Deterministic 32-bit mix of the full five-tuple, standing in for the NIC's
// Toeplitz hash and the kernel's established-table hash.
uint32_t FlowHash(const FiveTuple& tuple);

// Affinity-Accept's flow-group function: "we instruct the NIC to hash the low
// 12 bits of the source port number, resulting in at most 4,096 distinct hash
// values" (Section 3.1). num_groups generalizes the 4,096 for ablations and
// must be a power of two.
uint32_t FlowGroupOf(const FiveTuple& tuple, uint32_t num_groups);

struct FiveTupleHasher {
  size_t operator()(const FiveTuple& t) const { return FlowHash(t); }
};

}  // namespace affinity

#endif  // AFFINITY_SRC_NET_FLOW_H_
