#include "src/net/flow.h"

namespace affinity {

uint32_t FlowHash(const FiveTuple& tuple) {
  // 64-bit splitmix finalizer over the packed tuple; deterministic and well
  // distributed, which is all the Toeplitz hash provides here.
  uint64_t x = (static_cast<uint64_t>(tuple.src_ip) << 32) | tuple.dst_ip;
  x ^= (static_cast<uint64_t>(tuple.src_port) << 16) | tuple.dst_port;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<uint32_t>(x);
}

uint32_t FlowGroupOf(const FiveTuple& tuple, uint32_t num_groups) {
  // Low bits of the source port; masking generalizes "low 12 bits".
  return tuple.src_port & (num_groups - 1);
}

}  // namespace affinity
