#include "src/net/packet.h"

namespace affinity {

const char* PacketKindName(PacketKind kind) {
  switch (kind) {
    case PacketKind::kSyn:
      return "SYN";
    case PacketKind::kSynAck:
      return "SYN-ACK";
    case PacketKind::kAck:
      return "ACK";
    case PacketKind::kHttpRequest:
      return "HTTP-REQ";
    case PacketKind::kHttpData:
      return "HTTP-DATA";
    case PacketKind::kDataAck:
      return "DATA-ACK";
    case PacketKind::kFin:
      return "FIN";
    case PacketKind::kRst:
      return "RST";
  }
  return "?";
}

}  // namespace affinity
