// Registration of the simulated kernel data types (paper Table 4).
//
// Sizes are the ones DProf reports on the evaluation kernel:
//   tcp_sock 1664 B, sk_buff 512 B, tcp_request_sock 128 B, socket_fd 640 B,
//   file 192 B, task_struct 5184 B, plus the generic slab:size-{128, 1024,
//   4096, 16384} buffers that back packet payloads and socket buffers.
//
// Field offsets are chosen so that the *sets of lines* each kernel path
// touches reproduce the paper's sharing structure: the RX softirq path and
// the syscall path overlap on most of tcp_sock; request sockets are written
// at SYN/ACK time and read at accept() time; payload buffers are written by
// DMA and read by the copy path. Whether those paths run on one core or two
// is decided by the listen-socket variant under test -- which is the paper's
// whole point.

#ifndef AFFINITY_SRC_NET_KERNEL_TYPES_H_
#define AFFINITY_SRC_NET_KERNEL_TYPES_H_

#include "src/mem/object.h"

namespace affinity {

// Cached TypeIds + FieldIds for every simulated kernel structure. Constructed
// once per MemorySystem; all stack code shares one instance.
struct KernelTypes {
  explicit KernelTypes(TypeRegistry& registry);

  // --- struct tcp_sock (established socket), 1664 bytes / 26 lines ---
  TypeId tcp_sock;
  struct TcpSockFields {
    FieldId lock;           // sock spinlock + owner
    FieldId state;          // TCP state machine
    FieldId ehash_node;     // established-hash chain links (written by neighbors)
    FieldId global_node;    // global sock-list links (written by any core)
    FieldId rcv_nxt;        // RX sequence tracking
    FieldId copied_seq;     // app-side read cursor
    FieldId receive_queue;  // sk_receive_queue head/tail
    FieldId backlog;        // softirq backlog list
    FieldId rmem;           // receive memory accounting
    FieldId wait_queue;     // sk_sleep wait queue head
    FieldId snd_nxt;        // TX sequence state
    FieldId snd_una;        // lowest unacked byte (ACK processing)
    FieldId cwnd;           // congestion window + ssthresh
    FieldId write_queue;    // sk_write_queue head/tail
    FieldId wmem;           // send memory accounting
    FieldId rto_timer;      // retransmission timer
    FieldId delack_timer;   // delayed-ACK timer
    FieldId flags;          // sk_flags, shutdown bits
    FieldId callbacks;      // sk_data_ready / sk_write_space pointers
    FieldId route;          // cached dst entry
    FieldId cong_ops;       // congestion-control ops vector (read-only)
    FieldId icsk;           // inet_connection_sock block
    FieldId cold;           // init-once tail (md5, debug, secure seq)
  } ts;

  // --- struct sk_buff (packet metadata), 512 bytes / 8 lines ---
  TypeId sk_buff;
  struct SkBuffFields {
    FieldId node;      // list linkage on a queue
    FieldId len;       // refcnt + lengths
    FieldId data_ptrs; // head/data/tail/end pointers
    FieldId cb;        // TCP control block (seq numbers)
    FieldId dst;       // route / device
    FieldId headers;   // parsed header offsets
    FieldId shinfo;    // shared info / frags
    FieldId truesize;  // memory accounting + users
  } skb;

  // --- struct tcp_request_sock (SYN tracking), 128 bytes / 2 lines ---
  TypeId tcp_request_sock;
  struct ReqSockFields {
    FieldId node;   // request-hash chain
    FieldId seqs;   // isn, rcv_isn, window
    FieldId timer;  // SYN-ACK retransmit state
    FieldId meta;   // listener back-pointer, flags
  } rs;

  // --- struct socket_fd (struct socket + fd table slot), 640 bytes ---
  TypeId socket_fd;
  struct SocketFdFields {
    FieldId file_ref;  // fd-table slot + struct file pointer
    FieldId flags;     // O_NONBLOCK etc.
    FieldId ops;       // proto ops (read-only)
    FieldId wq;        // socket wait queue
  } sfd;

  // --- struct file, 192 bytes (global, refcounted from every core) ---
  TypeId file_obj;
  struct FileFields {
    FieldId refcnt;  // f_count, hammered by fget/fput on all cores
    FieldId pos;     // f_pos
    FieldId ops;     // f_op (read-only)
  } file;

  // --- struct task_struct, 5184 bytes / 81 lines ---
  TypeId task_struct;
  struct TaskFields {
    FieldId sched_state;  // on_rq, state: written by remote wakeups
    FieldId rq_node;      // runqueue linkage
    FieldId flags;        // task flags
    FieldId local;        // large task-local body (fs, mm, cred caches)
  } task;

  // --- generic slab buffers backing payloads ---
  TypeId slab_128;    // small metadata buffers
  TypeId slab_1024;   // typical response payload segment
  TypeId slab_4096;   // page-sized buffer
  TypeId slab_16384;  // socket buffer pages
  FieldId slab_128_hdr, slab_1024_hdr, slab_4096_hdr, slab_16384_hdr;

  // Picks the generic slab type whose buffer fits `bytes` of payload.
  TypeId PayloadTypeFor(uint32_t bytes) const;
  FieldId PayloadHeaderFor(TypeId type) const;
};

}  // namespace affinity

#endif  // AFFINITY_SRC_NET_KERNEL_TYPES_H_
