// Simulated packets.
//
// Packets carry no payload bytes, only metadata: the flow they belong to,
// their protocol role in the connection lifecycle, and their wire size (which
// the NIC bandwidth model consumes). Connection ids let endpoints find their
// state without re-hashing.

#ifndef AFFINITY_SRC_NET_PACKET_H_
#define AFFINITY_SRC_NET_PACKET_H_

#include <cstdint>

#include "src/net/flow.h"

namespace affinity {

enum class PacketKind : uint8_t {
  kSyn,          // client -> server, opens handshake
  kSynAck,       // server -> client
  kAck,          // client -> server, completes handshake
  kHttpRequest,  // client -> server, one HTTP GET
  kHttpData,     // server -> client, response payload segment
  kDataAck,      // client -> server, acknowledges payload
  kFin,          // either direction, teardown
  kRst,          // server -> client: no such connection (drop/overflow)
};

const char* PacketKindName(PacketKind kind);

// Minimum on-wire sizes. Control segments are one cache-line-ish TCP/IP
// header; data segments add payload up to the standard Ethernet MSS.
inline constexpr uint32_t kHeaderBytes = 66;  // Ethernet + IP + TCP headers
inline constexpr uint32_t kMssBytes = 1448;

struct Packet {
  FiveTuple flow;
  PacketKind kind = PacketKind::kSyn;
  uint32_t wire_bytes = kHeaderBytes;
  uint64_t conn_id = 0;   // simulator-wide connection identity
  uint32_t request_idx = 0;  // which HTTP request on the connection
  uint32_t file_index = 0;   // requested file (carried in the GET)
  bool last_segment = false; // final payload segment of a response
};

}  // namespace affinity

#endif  // AFFINITY_SRC_NET_PACKET_H_
