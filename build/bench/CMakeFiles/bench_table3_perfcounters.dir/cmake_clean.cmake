file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_perfcounters.dir/bench_table3_perfcounters.cc.o"
  "CMakeFiles/bench_table3_perfcounters.dir/bench_table3_perfcounters.cc.o.d"
  "bench_table3_perfcounters"
  "bench_table3_perfcounters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_perfcounters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
