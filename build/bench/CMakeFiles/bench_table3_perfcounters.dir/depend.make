# Empty dependencies file for bench_table3_perfcounters.
# This may be replaced when dependencies are built.
