file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lighttpd_amd.dir/bench_fig3_lighttpd_amd.cc.o"
  "CMakeFiles/bench_fig3_lighttpd_amd.dir/bench_fig3_lighttpd_amd.cc.o.d"
  "bench_fig3_lighttpd_amd"
  "bench_fig3_lighttpd_amd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lighttpd_amd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
