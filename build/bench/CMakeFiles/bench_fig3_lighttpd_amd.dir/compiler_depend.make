# Empty compiler generated dependencies file for bench_fig3_lighttpd_amd.
# This may be replaced when dependencies are built.
