file(REMOVE_RECURSE
  "CMakeFiles/bench_sec65_load_balancer.dir/bench_sec65_load_balancer.cc.o"
  "CMakeFiles/bench_sec65_load_balancer.dir/bench_sec65_load_balancer.cc.o.d"
  "bench_sec65_load_balancer"
  "bench_sec65_load_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec65_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
