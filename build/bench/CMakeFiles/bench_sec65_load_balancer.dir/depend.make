# Empty dependencies file for bench_sec65_load_balancer.
# This may be replaced when dependencies are built.
