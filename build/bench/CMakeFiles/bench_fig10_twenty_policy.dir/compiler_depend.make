# Empty compiler generated dependencies file for bench_fig10_twenty_policy.
# This may be replaced when dependencies are built.
