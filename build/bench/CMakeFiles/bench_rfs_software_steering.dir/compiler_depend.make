# Empty compiler generated dependencies file for bench_rfs_software_steering.
# This may be replaced when dependencies are built.
