
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rfs_software_steering.cc" "bench/CMakeFiles/bench_rfs_software_steering.dir/bench_rfs_software_steering.cc.o" "gcc" "bench/CMakeFiles/bench_rfs_software_steering.dir/bench_rfs_software_steering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/aff_app.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/aff_load.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/aff_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/balance/CMakeFiles/aff_balance.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aff_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aff_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
