file(REMOVE_RECURSE
  "CMakeFiles/bench_rfs_software_steering.dir/bench_rfs_software_steering.cc.o"
  "CMakeFiles/bench_rfs_software_steering.dir/bench_rfs_software_steering.cc.o.d"
  "bench_rfs_software_steering"
  "bench_rfs_software_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rfs_software_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
