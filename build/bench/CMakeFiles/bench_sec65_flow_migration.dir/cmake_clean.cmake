file(REMOVE_RECURSE
  "CMakeFiles/bench_sec65_flow_migration.dir/bench_sec65_flow_migration.cc.o"
  "CMakeFiles/bench_sec65_flow_migration.dir/bench_sec65_flow_migration.cc.o.d"
  "bench_sec65_flow_migration"
  "bench_sec65_flow_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec65_flow_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
