# Empty compiler generated dependencies file for bench_sec65_flow_migration.
# This may be replaced when dependencies are built.
