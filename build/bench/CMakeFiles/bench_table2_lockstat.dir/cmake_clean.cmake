file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lockstat.dir/bench_table2_lockstat.cc.o"
  "CMakeFiles/bench_table2_lockstat.dir/bench_table2_lockstat.cc.o.d"
  "bench_table2_lockstat"
  "bench_table2_lockstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lockstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
