file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dprof.dir/bench_table4_dprof.cc.o"
  "CMakeFiles/bench_table4_dprof.dir/bench_table4_dprof.cc.o.d"
  "bench_table4_dprof"
  "bench_table4_dprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
