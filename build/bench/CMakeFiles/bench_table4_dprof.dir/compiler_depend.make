# Empty compiler generated dependencies file for bench_table4_dprof.
# This may be replaced when dependencies are built.
