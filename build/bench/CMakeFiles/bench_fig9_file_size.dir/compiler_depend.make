# Empty compiler generated dependencies file for bench_fig9_file_size.
# This may be replaced when dependencies are built.
