# Empty compiler generated dependencies file for bench_fig7_request_reuse.
# This may be replaced when dependencies are built.
