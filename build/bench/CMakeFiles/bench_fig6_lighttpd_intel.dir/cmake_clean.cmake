file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lighttpd_intel.dir/bench_fig6_lighttpd_intel.cc.o"
  "CMakeFiles/bench_fig6_lighttpd_intel.dir/bench_fig6_lighttpd_intel.cc.o.d"
  "bench_fig6_lighttpd_intel"
  "bench_fig6_lighttpd_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lighttpd_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
