# Empty dependencies file for bench_fig6_lighttpd_intel.
# This may be replaced when dependencies are built.
