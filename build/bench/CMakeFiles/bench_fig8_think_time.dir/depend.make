# Empty dependencies file for bench_fig8_think_time.
# This may be replaced when dependencies are built.
