# Empty compiler generated dependencies file for bench_app_architectures.
# This may be replaced when dependencies are built.
