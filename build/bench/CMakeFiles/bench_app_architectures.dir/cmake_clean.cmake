file(REMOVE_RECURSE
  "CMakeFiles/bench_app_architectures.dir/bench_app_architectures.cc.o"
  "CMakeFiles/bench_app_architectures.dir/bench_app_architectures.cc.o.d"
  "bench_app_architectures"
  "bench_app_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
