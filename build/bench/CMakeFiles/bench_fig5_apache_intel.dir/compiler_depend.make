# Empty compiler generated dependencies file for bench_fig5_apache_intel.
# This may be replaced when dependencies are built.
