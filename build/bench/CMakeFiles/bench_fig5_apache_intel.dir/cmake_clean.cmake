file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_apache_intel.dir/bench_fig5_apache_intel.cc.o"
  "CMakeFiles/bench_fig5_apache_intel.dir/bench_fig5_apache_intel.cc.o.d"
  "bench_fig5_apache_intel"
  "bench_fig5_apache_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_apache_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
