file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_nic_features.dir/bench_table5_nic_features.cc.o"
  "CMakeFiles/bench_table5_nic_features.dir/bench_table5_nic_features.cc.o.d"
  "bench_table5_nic_features"
  "bench_table5_nic_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_nic_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
