file(REMOVE_RECURSE
  "CMakeFiles/bench_arfs_steering.dir/bench_arfs_steering.cc.o"
  "CMakeFiles/bench_arfs_steering.dir/bench_arfs_steering.cc.o.d"
  "bench_arfs_steering"
  "bench_arfs_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arfs_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
