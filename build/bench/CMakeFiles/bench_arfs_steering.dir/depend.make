# Empty dependencies file for bench_arfs_steering.
# This may be replaced when dependencies are built.
