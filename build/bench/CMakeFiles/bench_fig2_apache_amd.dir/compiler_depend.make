# Empty compiler generated dependencies file for bench_fig2_apache_amd.
# This may be replaced when dependencies are built.
