file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_apache_amd.dir/bench_fig2_apache_amd.cc.o"
  "CMakeFiles/bench_fig2_apache_amd.dir/bench_fig2_apache_amd.cc.o.d"
  "bench_fig2_apache_amd"
  "bench_fig2_apache_amd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_apache_amd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
