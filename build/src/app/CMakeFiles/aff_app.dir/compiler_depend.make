# Empty compiler generated dependencies file for aff_app.
# This may be replaced when dependencies are built.
