file(REMOVE_RECURSE
  "CMakeFiles/aff_app.dir/compute_job.cc.o"
  "CMakeFiles/aff_app.dir/compute_job.cc.o.d"
  "CMakeFiles/aff_app.dir/event_server.cc.o"
  "CMakeFiles/aff_app.dir/event_server.cc.o.d"
  "CMakeFiles/aff_app.dir/prefork_server.cc.o"
  "CMakeFiles/aff_app.dir/prefork_server.cc.o.d"
  "CMakeFiles/aff_app.dir/server.cc.o"
  "CMakeFiles/aff_app.dir/server.cc.o.d"
  "CMakeFiles/aff_app.dir/worker_server.cc.o"
  "CMakeFiles/aff_app.dir/worker_server.cc.o.d"
  "libaff_app.a"
  "libaff_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
