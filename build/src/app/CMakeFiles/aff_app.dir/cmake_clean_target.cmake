file(REMOVE_RECURSE
  "libaff_app.a"
)
