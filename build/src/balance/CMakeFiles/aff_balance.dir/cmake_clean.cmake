file(REMOVE_RECURSE
  "CMakeFiles/aff_balance.dir/busy_tracker.cc.o"
  "CMakeFiles/aff_balance.dir/busy_tracker.cc.o.d"
  "CMakeFiles/aff_balance.dir/flow_migrator.cc.o"
  "CMakeFiles/aff_balance.dir/flow_migrator.cc.o.d"
  "CMakeFiles/aff_balance.dir/steal_policy.cc.o"
  "CMakeFiles/aff_balance.dir/steal_policy.cc.o.d"
  "libaff_balance.a"
  "libaff_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
