file(REMOVE_RECURSE
  "libaff_balance.a"
)
