# Empty compiler generated dependencies file for aff_balance.
# This may be replaced when dependencies are built.
