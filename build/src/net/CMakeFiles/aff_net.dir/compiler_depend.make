# Empty compiler generated dependencies file for aff_net.
# This may be replaced when dependencies are built.
