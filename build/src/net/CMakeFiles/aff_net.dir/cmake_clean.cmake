file(REMOVE_RECURSE
  "CMakeFiles/aff_net.dir/flow.cc.o"
  "CMakeFiles/aff_net.dir/flow.cc.o.d"
  "CMakeFiles/aff_net.dir/kernel_types.cc.o"
  "CMakeFiles/aff_net.dir/kernel_types.cc.o.d"
  "CMakeFiles/aff_net.dir/packet.cc.o"
  "CMakeFiles/aff_net.dir/packet.cc.o.d"
  "libaff_net.a"
  "libaff_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
