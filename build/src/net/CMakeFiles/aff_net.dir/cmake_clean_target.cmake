file(REMOVE_RECURSE
  "libaff_net.a"
)
