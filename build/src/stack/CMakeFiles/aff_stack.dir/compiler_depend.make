# Empty compiler generated dependencies file for aff_stack.
# This may be replaced when dependencies are built.
