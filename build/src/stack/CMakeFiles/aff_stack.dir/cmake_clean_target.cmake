file(REMOVE_RECURSE
  "libaff_stack.a"
)
