
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/core_agent.cc" "src/stack/CMakeFiles/aff_stack.dir/core_agent.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/core_agent.cc.o.d"
  "/root/repo/src/stack/established_table.cc" "src/stack/CMakeFiles/aff_stack.dir/established_table.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/established_table.cc.o.d"
  "/root/repo/src/stack/kernel.cc" "src/stack/CMakeFiles/aff_stack.dir/kernel.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/kernel.cc.o.d"
  "/root/repo/src/stack/listen_socket.cc" "src/stack/CMakeFiles/aff_stack.dir/listen_socket.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/listen_socket.cc.o.d"
  "/root/repo/src/stack/lock_stat.cc" "src/stack/CMakeFiles/aff_stack.dir/lock_stat.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/lock_stat.cc.o.d"
  "/root/repo/src/stack/perf_counters.cc" "src/stack/CMakeFiles/aff_stack.dir/perf_counters.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/perf_counters.cc.o.d"
  "/root/repo/src/stack/sched.cc" "src/stack/CMakeFiles/aff_stack.dir/sched.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/sched.cc.o.d"
  "/root/repo/src/stack/sim_lock.cc" "src/stack/CMakeFiles/aff_stack.dir/sim_lock.cc.o" "gcc" "src/stack/CMakeFiles/aff_stack.dir/sim_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/balance/CMakeFiles/aff_balance.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aff_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aff_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
