file(REMOVE_RECURSE
  "CMakeFiles/aff_stack.dir/core_agent.cc.o"
  "CMakeFiles/aff_stack.dir/core_agent.cc.o.d"
  "CMakeFiles/aff_stack.dir/established_table.cc.o"
  "CMakeFiles/aff_stack.dir/established_table.cc.o.d"
  "CMakeFiles/aff_stack.dir/kernel.cc.o"
  "CMakeFiles/aff_stack.dir/kernel.cc.o.d"
  "CMakeFiles/aff_stack.dir/listen_socket.cc.o"
  "CMakeFiles/aff_stack.dir/listen_socket.cc.o.d"
  "CMakeFiles/aff_stack.dir/lock_stat.cc.o"
  "CMakeFiles/aff_stack.dir/lock_stat.cc.o.d"
  "CMakeFiles/aff_stack.dir/perf_counters.cc.o"
  "CMakeFiles/aff_stack.dir/perf_counters.cc.o.d"
  "CMakeFiles/aff_stack.dir/sched.cc.o"
  "CMakeFiles/aff_stack.dir/sched.cc.o.d"
  "CMakeFiles/aff_stack.dir/sim_lock.cc.o"
  "CMakeFiles/aff_stack.dir/sim_lock.cc.o.d"
  "libaff_stack.a"
  "libaff_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
