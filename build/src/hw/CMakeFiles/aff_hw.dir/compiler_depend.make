# Empty compiler generated dependencies file for aff_hw.
# This may be replaced when dependencies are built.
