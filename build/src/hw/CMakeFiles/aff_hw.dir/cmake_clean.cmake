file(REMOVE_RECURSE
  "CMakeFiles/aff_hw.dir/fdir.cc.o"
  "CMakeFiles/aff_hw.dir/fdir.cc.o.d"
  "CMakeFiles/aff_hw.dir/nic.cc.o"
  "CMakeFiles/aff_hw.dir/nic.cc.o.d"
  "CMakeFiles/aff_hw.dir/nic_catalogue.cc.o"
  "CMakeFiles/aff_hw.dir/nic_catalogue.cc.o.d"
  "CMakeFiles/aff_hw.dir/rss.cc.o"
  "CMakeFiles/aff_hw.dir/rss.cc.o.d"
  "CMakeFiles/aff_hw.dir/topology.cc.o"
  "CMakeFiles/aff_hw.dir/topology.cc.o.d"
  "libaff_hw.a"
  "libaff_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
