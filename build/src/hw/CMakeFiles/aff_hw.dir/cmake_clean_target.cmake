file(REMOVE_RECURSE
  "libaff_hw.a"
)
