
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/fdir.cc" "src/hw/CMakeFiles/aff_hw.dir/fdir.cc.o" "gcc" "src/hw/CMakeFiles/aff_hw.dir/fdir.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/aff_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/aff_hw.dir/nic.cc.o.d"
  "/root/repo/src/hw/nic_catalogue.cc" "src/hw/CMakeFiles/aff_hw.dir/nic_catalogue.cc.o" "gcc" "src/hw/CMakeFiles/aff_hw.dir/nic_catalogue.cc.o.d"
  "/root/repo/src/hw/rss.cc" "src/hw/CMakeFiles/aff_hw.dir/rss.cc.o" "gcc" "src/hw/CMakeFiles/aff_hw.dir/rss.cc.o.d"
  "/root/repo/src/hw/topology.cc" "src/hw/CMakeFiles/aff_hw.dir/topology.cc.o" "gcc" "src/hw/CMakeFiles/aff_hw.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/aff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aff_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
