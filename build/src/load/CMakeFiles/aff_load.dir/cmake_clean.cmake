file(REMOVE_RECURSE
  "CMakeFiles/aff_load.dir/httperf.cc.o"
  "CMakeFiles/aff_load.dir/httperf.cc.o.d"
  "CMakeFiles/aff_load.dir/workload.cc.o"
  "CMakeFiles/aff_load.dir/workload.cc.o.d"
  "libaff_load.a"
  "libaff_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
