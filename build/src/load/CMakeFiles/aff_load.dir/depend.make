# Empty dependencies file for aff_load.
# This may be replaced when dependencies are built.
