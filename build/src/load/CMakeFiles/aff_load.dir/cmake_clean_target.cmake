file(REMOVE_RECURSE
  "libaff_load.a"
)
