file(REMOVE_RECURSE
  "libaff_core.a"
)
