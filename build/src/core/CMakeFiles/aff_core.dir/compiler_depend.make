# Empty compiler generated dependencies file for aff_core.
# This may be replaced when dependencies are built.
