file(REMOVE_RECURSE
  "CMakeFiles/aff_core.dir/experiment.cc.o"
  "CMakeFiles/aff_core.dir/experiment.cc.o.d"
  "CMakeFiles/aff_core.dir/reporter.cc.o"
  "CMakeFiles/aff_core.dir/reporter.cc.o.d"
  "libaff_core.a"
  "libaff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
