# Empty compiler generated dependencies file for aff_sim.
# This may be replaced when dependencies are built.
