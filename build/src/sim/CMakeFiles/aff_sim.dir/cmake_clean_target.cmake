file(REMOVE_RECURSE
  "libaff_sim.a"
)
