file(REMOVE_RECURSE
  "CMakeFiles/aff_sim.dir/event_loop.cc.o"
  "CMakeFiles/aff_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/aff_sim.dir/rng.cc.o"
  "CMakeFiles/aff_sim.dir/rng.cc.o.d"
  "CMakeFiles/aff_sim.dir/stats.cc.o"
  "CMakeFiles/aff_sim.dir/stats.cc.o.d"
  "libaff_sim.a"
  "libaff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
