file(REMOVE_RECURSE
  "CMakeFiles/aff_mem.dir/coherence.cc.o"
  "CMakeFiles/aff_mem.dir/coherence.cc.o.d"
  "CMakeFiles/aff_mem.dir/memory_profile.cc.o"
  "CMakeFiles/aff_mem.dir/memory_profile.cc.o.d"
  "CMakeFiles/aff_mem.dir/memory_system.cc.o"
  "CMakeFiles/aff_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/aff_mem.dir/object.cc.o"
  "CMakeFiles/aff_mem.dir/object.cc.o.d"
  "CMakeFiles/aff_mem.dir/sharing_profiler.cc.o"
  "CMakeFiles/aff_mem.dir/sharing_profiler.cc.o.d"
  "CMakeFiles/aff_mem.dir/slab.cc.o"
  "CMakeFiles/aff_mem.dir/slab.cc.o.d"
  "libaff_mem.a"
  "libaff_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aff_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
