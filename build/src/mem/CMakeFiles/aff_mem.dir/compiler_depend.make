# Empty compiler generated dependencies file for aff_mem.
# This may be replaced when dependencies are built.
