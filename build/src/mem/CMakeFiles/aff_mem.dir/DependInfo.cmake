
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/coherence.cc" "src/mem/CMakeFiles/aff_mem.dir/coherence.cc.o" "gcc" "src/mem/CMakeFiles/aff_mem.dir/coherence.cc.o.d"
  "/root/repo/src/mem/memory_profile.cc" "src/mem/CMakeFiles/aff_mem.dir/memory_profile.cc.o" "gcc" "src/mem/CMakeFiles/aff_mem.dir/memory_profile.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/aff_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/aff_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/object.cc" "src/mem/CMakeFiles/aff_mem.dir/object.cc.o" "gcc" "src/mem/CMakeFiles/aff_mem.dir/object.cc.o.d"
  "/root/repo/src/mem/sharing_profiler.cc" "src/mem/CMakeFiles/aff_mem.dir/sharing_profiler.cc.o" "gcc" "src/mem/CMakeFiles/aff_mem.dir/sharing_profiler.cc.o.d"
  "/root/repo/src/mem/slab.cc" "src/mem/CMakeFiles/aff_mem.dir/slab.cc.o" "gcc" "src/mem/CMakeFiles/aff_mem.dir/slab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
