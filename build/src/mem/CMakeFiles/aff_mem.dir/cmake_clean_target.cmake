file(REMOVE_RECURSE
  "libaff_mem.a"
)
