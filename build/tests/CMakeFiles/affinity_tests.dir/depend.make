# Empty dependencies file for affinity_tests.
# This may be replaced when dependencies are built.
