
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app/app_test.cc" "tests/CMakeFiles/affinity_tests.dir/app/app_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/app/app_test.cc.o.d"
  "/root/repo/tests/balance/balance_test.cc" "tests/CMakeFiles/affinity_tests.dir/balance/balance_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/balance/balance_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/CMakeFiles/affinity_tests.dir/core/experiment_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/core/experiment_test.cc.o.d"
  "/root/repo/tests/hw/nic_test.cc" "tests/CMakeFiles/affinity_tests.dir/hw/nic_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/hw/nic_test.cc.o.d"
  "/root/repo/tests/hw/rss_fdir_test.cc" "tests/CMakeFiles/affinity_tests.dir/hw/rss_fdir_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/hw/rss_fdir_test.cc.o.d"
  "/root/repo/tests/load/load_test.cc" "tests/CMakeFiles/affinity_tests.dir/load/load_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/load/load_test.cc.o.d"
  "/root/repo/tests/mem/coherence_test.cc" "tests/CMakeFiles/affinity_tests.dir/mem/coherence_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/mem/coherence_test.cc.o.d"
  "/root/repo/tests/mem/memory_test.cc" "tests/CMakeFiles/affinity_tests.dir/mem/memory_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/mem/memory_test.cc.o.d"
  "/root/repo/tests/mem/sharing_profiler_test.cc" "tests/CMakeFiles/affinity_tests.dir/mem/sharing_profiler_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/mem/sharing_profiler_test.cc.o.d"
  "/root/repo/tests/properties_test.cc" "tests/CMakeFiles/affinity_tests.dir/properties_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/properties_test.cc.o.d"
  "/root/repo/tests/sim/event_loop_test.cc" "tests/CMakeFiles/affinity_tests.dir/sim/event_loop_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/sim/event_loop_test.cc.o.d"
  "/root/repo/tests/sim/rng_test.cc" "tests/CMakeFiles/affinity_tests.dir/sim/rng_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/sim/rng_test.cc.o.d"
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/affinity_tests.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/sim/stats_test.cc.o.d"
  "/root/repo/tests/stack/arfs_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/arfs_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/arfs_test.cc.o.d"
  "/root/repo/tests/stack/core_agent_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/core_agent_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/core_agent_test.cc.o.d"
  "/root/repo/tests/stack/established_table_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/established_table_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/established_table_test.cc.o.d"
  "/root/repo/tests/stack/kernel_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/kernel_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/kernel_test.cc.o.d"
  "/root/repo/tests/stack/listen_socket_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/listen_socket_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/listen_socket_test.cc.o.d"
  "/root/repo/tests/stack/rfs_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/rfs_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/rfs_test.cc.o.d"
  "/root/repo/tests/stack/sched_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/sched_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/sched_test.cc.o.d"
  "/root/repo/tests/stack/sim_lock_test.cc" "tests/CMakeFiles/affinity_tests.dir/stack/sim_lock_test.cc.o" "gcc" "tests/CMakeFiles/affinity_tests.dir/stack/sim_lock_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/aff_app.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/aff_load.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/aff_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/balance/CMakeFiles/aff_balance.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aff_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aff_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
